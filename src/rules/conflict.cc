#include "rules/conflict.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace imcf {
namespace rules {

const char* ConflictKindName(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kClash:
      return "clash";
    case ConflictKind::kShadowed:
      return "shadowed";
    case ConflictKind::kBudgetInfeasible:
      return "budget-infeasible";
  }
  return "?";
}

namespace {

/// Decomposes a (possibly wrapping) daily window into up to two linear
/// [start, end) minute intervals.
int LinearIntervals(const TimeWindow& w, int starts[2], int ends[2]) {
  if (w.start_minute == w.end_minute) return 0;  // empty
  if (w.start_minute < w.end_minute) {
    starts[0] = w.start_minute;
    ends[0] = w.end_minute;
    return 1;
  }
  starts[0] = w.start_minute;
  ends[0] = kMinutesPerDay;
  starts[1] = 0;
  ends[1] = w.end_minute;
  return 2;
}

}  // namespace

int WindowOverlapMinutes(const TimeWindow& a, const TimeWindow& b) {
  int sa[2], ea[2], sb[2], eb[2];
  const int na = LinearIntervals(a, sa, ea);
  const int nb = LinearIntervals(b, sb, eb);
  int overlap = 0;
  for (int i = 0; i < na; ++i) {
    for (int j = 0; j < nb; ++j) {
      overlap += std::max(0, std::min(ea[i], eb[j]) - std::max(sa[i], sb[j]));
    }
  }
  return overlap;
}

std::vector<Conflict> FindWindowConflicts(const MetaRuleTable& table,
                                          double value_tolerance) {
  std::vector<Conflict> conflicts;
  const size_t n = table.convenience_count();
  for (size_t i = 0; i < n; ++i) {
    const MetaRule& a = table.ConvenienceRule(i);
    for (size_t j = i + 1; j < n; ++j) {
      const MetaRule& b = table.ConvenienceRule(j);
      if (a.unit != b.unit || a.TargetKind() != b.TargetKind()) continue;
      const int overlap = WindowOverlapMinutes(a.window, b.window);
      if (overlap == 0) continue;
      Conflict conflict;
      conflict.rule_a = a.id;
      conflict.rule_b = b.id;
      conflict.overlap_minutes = overlap;
      conflict.severity = std::fabs(a.value - b.value);
      if (conflict.severity <= value_tolerance) {
        conflict.kind = ConflictKind::kShadowed;
        conflict.description = StrFormat(
            "'%s' is redundant with '%s' for %d min/day (same value %g)",
            a.description.c_str(), b.description.c_str(), overlap, a.value);
      } else {
        conflict.kind = ConflictKind::kClash;
        conflict.description = StrFormat(
            "'%s' (%g) loses to '%s' (%g) for %d min/day on the same device",
            a.description.c_str(), a.value, b.description.c_str(), b.value,
            overlap);
      }
      conflicts.push_back(std::move(conflict));
    }
  }
  return conflicts;
}

std::vector<Conflict> CheckBudgetFeasibility(
    const MetaRuleTable& table, double budget_kwh, int period_days,
    const std::function<double(const MetaRule&, int hour)>& hourly_energy) {
  std::vector<Conflict> conflicts;
  if (period_days <= 0 || budget_kwh <= 0.0) return conflicts;

  // Forecast daily demand: for each hour, the winning rule per device plus
  // every necessity rule.
  double daily_demand = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const int minute = hour * 60 + 30;
    // Winner per (unit, kind): the latest active rule.
    std::vector<const MetaRule*> winners;
    for (size_t i = 0; i < table.convenience_count(); ++i) {
      const MetaRule& rule = table.ConvenienceRule(i);
      if (!rule.window.ContainsMinute(minute)) continue;
      bool replaced = false;
      for (const MetaRule*& w : winners) {
        if (w->unit == rule.unit && w->TargetKind() == rule.TargetKind()) {
          if (rule.id > w->id) w = &rule;
          replaced = true;
          break;
        }
      }
      if (!replaced) winners.push_back(&rule);
    }
    for (const MetaRule* rule : winners) {
      daily_demand += hourly_energy(*rule, hour);
    }
    for (int id : table.necessity_ids()) {
      const MetaRule& rule = *table.Get(id).value();
      if (rule.window.ContainsMinute(minute)) {
        daily_demand += hourly_energy(rule, hour);
      }
    }
  }

  const double daily_budget = budget_kwh / static_cast<double>(period_days);
  if (daily_demand > daily_budget) {
    Conflict conflict;
    conflict.kind = ConflictKind::kBudgetInfeasible;
    conflict.severity = daily_demand - daily_budget;
    conflict.description = StrFormat(
        "forecast demand %.1f kWh/day exceeds the budget's %.1f kWh/day "
        "(%.0f kWh over %d days): the planner will drop rules",
        daily_demand, daily_budget, budget_kwh, period_days);
    conflicts.push_back(std::move(conflict));
  }
  return conflicts;
}

std::string FormatConflicts(const std::vector<Conflict>& conflicts) {
  if (conflicts.empty()) return "no conflicts detected\n";
  std::string out;
  for (const Conflict& conflict : conflicts) {
    out += StrFormat("[%s] %s\n", ConflictKindName(conflict.kind),
                     conflict.description.c_str());
  }
  return out;
}

}  // namespace rules
}  // namespace imcf
