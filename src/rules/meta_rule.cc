#include "rules/meta_rule.h"

#include <algorithm>

#include "common/strings.h"
#include "common/units.h"

namespace imcf {
namespace rules {

const char* RuleActionName(RuleAction action) {
  switch (action) {
    case RuleAction::kSetTemperature:
      return "Set Temperature";
    case RuleAction::kSetLight:
      return "Set Light";
    case RuleAction::kSetKwhLimit:
      return "Set kWh Limit";
  }
  return "?";
}

Status MetaRuleTable::Add(MetaRule rule) {
  if (rule.action == RuleAction::kSetKwhLimit && rule.value < 0.0) {
    return Status::InvalidArgument("kWh limit must be non-negative");
  }
  if (rule.action == RuleAction::kSetLight &&
      (rule.value < 0.0 || rule.value > 100.0)) {
    return Status::InvalidArgument(
        StrFormat("light value %.1f outside [0,100]", rule.value));
  }
  rule.id = static_cast<int>(rules_.size());
  if (rule.IsConvenience()) {
    if (rule.necessity) {
      necessity_ids_.push_back(rule.id);
    } else {
      convenience_ids_.push_back(rule.id);
    }
  }
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

std::vector<int> MetaRuleTable::NecessityActiveAt(SimTime t) const {
  std::vector<int> active;
  const int minute = MinuteOfDay(t);
  for (int id : necessity_ids_) {
    if (rules_[static_cast<size_t>(id)].window.ContainsMinute(minute)) {
      active.push_back(id);
    }
  }
  return active;
}

std::vector<int> MetaRuleTable::ActiveAt(SimTime t) const {
  std::vector<int> active;
  const int minute = MinuteOfDay(t);
  for (size_t i = 0; i < convenience_ids_.size(); ++i) {
    const MetaRule& rule = ConvenienceRule(i);
    if (rule.window.ContainsMinute(minute)) {
      active.push_back(static_cast<int>(i));
    }
  }
  return active;
}

std::optional<double> MetaRuleTable::TotalKwhLimit() const {
  double total = 0.0;
  bool any = false;
  for (const MetaRule& rule : rules_) {
    if (rule.action == RuleAction::kSetKwhLimit) {
      total += rule.value;
      any = true;
    }
  }
  if (!any) return std::nullopt;
  return total;
}

Result<const MetaRule*> MetaRuleTable::Get(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= rules_.size()) {
    return Status::NotFound(StrFormat("no rule with id %d", id));
  }
  return &rules_[static_cast<size_t>(id)];
}

namespace {

struct FlatRuleRow {
  const char* description;
  int start_minute;
  int end_minute;
  RuleAction action;
  double value;
};

// Table II, convenience rows.
constexpr FlatRuleRow kFlatRules[] = {
    {"Night Heat", 1 * 60, 7 * 60, RuleAction::kSetTemperature, 25.0},
    {"Morning Lights", 4 * 60, 9 * 60, RuleAction::kSetLight, 40.0},
    {"Day Heat", 8 * 60, 16 * 60, RuleAction::kSetTemperature, 22.0},
    {"Midday Lights", 10 * 60, 17 * 60, RuleAction::kSetLight, 30.0},
    {"Afternoon Preheat", 17 * 60, 24 * 60, RuleAction::kSetTemperature, 24.0},
    {"Cosmetic Lights", 18 * 60, 24 * 60, RuleAction::kSetLight, 40.0},
};

}  // namespace

MetaRuleTable FlatMrt(double budget_kwh) {
  MetaRuleTable table;
  int priority = 0;
  for (const FlatRuleRow& row : kFlatRules) {
    MetaRule rule;
    rule.description = row.description;
    rule.window = TimeWindow{row.start_minute, row.end_minute};
    rule.action = row.action;
    rule.value = row.value;
    rule.unit = 0;
    rule.priority = priority++;
    // Adds of the static table cannot fail: values are in range.
    (void)table.Add(std::move(rule));
  }
  if (budget_kwh > 0.0) {
    MetaRule limit;
    limit.description = "Energy Budget";
    limit.action = RuleAction::kSetKwhLimit;
    limit.value = budget_kwh;
    limit.necessity = true;
    (void)table.Add(std::move(limit));
  }
  return table;
}

MetaRuleTable VariedMrt(int units, double variation, uint64_t seed,
                        double budget_kwh) {
  MetaRuleTable table;
  Rng rng(seed);
  for (int u = 0; u < units; ++u) {
    int priority = 0;
    for (const FlatRuleRow& row : kFlatRules) {
      MetaRule rule;
      rule.description = StrFormat("%s (unit %d)", row.description, u);
      int start = row.start_minute;
      int end = row.end_minute;
      double value = row.value;
      if (variation > 0.0) {
        const int shift = static_cast<int>(
            rng.UniformInt(-static_cast<int64_t>(60 * variation),
                           static_cast<int64_t>(60 * variation)));
        start = std::clamp(start + shift, 0,
                           static_cast<int>(kMinutesPerDay) - 30);
        end = std::clamp(end + shift, start + 30, static_cast<int>(kMinutesPerDay));
        if (row.action == RuleAction::kSetTemperature) {
          value += rng.UniformDouble(-3.0 * variation, 3.0 * variation);
          value = Clamp(value, 18.0, 27.0);
        } else {
          value += rng.UniformDouble(-20.0 * variation, 20.0 * variation);
          value = Clamp(value, 5.0, 100.0);
        }
      }
      rule.window = TimeWindow{start, end};
      rule.action = row.action;
      rule.value = value;
      rule.unit = u;
      rule.priority = priority++;
      (void)table.Add(std::move(rule));
    }
  }
  if (budget_kwh > 0.0) {
    MetaRule limit;
    limit.description = "Energy Budget";
    limit.action = RuleAction::kSetKwhLimit;
    limit.value = budget_kwh;
    limit.necessity = true;
    (void)table.Add(std::move(limit));
  }
  return table;
}

}  // namespace rules
}  // namespace imcf
