// Meta-Rule-Table (MRT): the user's convenience preference profile.
//
// A meta-rule is one row of the paper's Table II: a description, a daily
// time window, an action ("Set Temperature" / "Set Light") with a desired
// value, or a long-term energy constraint ("Set kWh Limit"). The Energy
// Planner's solution vector s ∈ {0,1}^N is indexed by the convenience rules
// of this table. Rules are classified as *convenience* (may be dropped to
// meet the budget) or *necessity* (always executed).

#ifndef IMCF_RULES_META_RULE_H_
#define IMCF_RULES_META_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/time.h"
#include "devices/device.h"

namespace imcf {
namespace rules {

/// Action column of the MRT.
enum class RuleAction : uint8_t {
  kSetTemperature = 0,  ///< HVAC setpoint, °C
  kSetLight = 1,        ///< light intensity, 0-100
  kSetKwhLimit = 2,     ///< long-term energy budget, kWh
};

const char* RuleActionName(RuleAction action);

/// One row of the Meta-Rule-Table.
struct MetaRule {
  int id = -1;              ///< assigned by the table
  std::string description;
  TimeWindow window;        ///< daily applicability (convenience rules)
  RuleAction action = RuleAction::kSetTemperature;
  double value = 0.0;
  int unit = 0;             ///< building unit the rule targets
  bool necessity = false;   ///< necessity rules bypass the planner
  int priority = 0;         ///< importance order (0 = most important)
  std::string user;         ///< owning resident (multi-user prototype)

  /// Convenience rules participate in the planner's solution vector;
  /// kWh-limit rows configure the budget instead.
  bool IsConvenience() const { return action != RuleAction::kSetKwhLimit; }

  /// The device kind this rule actuates (convenience rules only).
  devices::DeviceKind TargetKind() const {
    return action == RuleAction::kSetTemperature ? devices::DeviceKind::kHvac
                                                 : devices::DeviceKind::kLight;
  }

  /// The command this rule emits when adopted (convenience rules only).
  devices::CommandType TargetCommand() const {
    return action == RuleAction::kSetTemperature
               ? devices::CommandType::kSetTemperature
               : devices::CommandType::kSetLight;
  }
};

/// An ordered table of meta-rules. Convenience rules keep a dense secondary
/// index (0..N-1) used as the planner's solution-vector coordinate.
class MetaRuleTable {
 public:
  /// Appends a rule; assigns its id. kWh-limit rules must be non-negative.
  Status Add(MetaRule rule);

  const std::vector<MetaRule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Ids of convenience rules, in priority order of insertion. The position
  /// in this vector is the rule's solution-vector index. Necessity rules
  /// ("should always be executed regardless of whether the long-term
  /// target is met") are excluded — the planner cannot drop them.
  const std::vector<int>& convenience_ids() const { return convenience_ids_; }
  size_t convenience_count() const { return convenience_ids_.size(); }

  /// Ids of necessity actuation rules (non-budget rows with the necessity
  /// flag): executed unconditionally by every policy.
  const std::vector<int>& necessity_ids() const { return necessity_ids_; }

  /// The convenience rule at solution-vector index `i`.
  const MetaRule& ConvenienceRule(size_t i) const {
    return rules_[static_cast<size_t>(convenience_ids_[i])];
  }

  /// Solution-vector indices of convenience rules whose window contains `t`.
  std::vector<int> ActiveAt(SimTime t) const;

  /// Sum of all kWh-limit rows, if any were configured.
  std::optional<double> TotalKwhLimit() const;

  /// Rule by id.
  Result<const MetaRule*> Get(int id) const;

  /// Necessity rules whose window contains `t` (rule ids, not solution
  /// indices).
  std::vector<int> NecessityActiveAt(SimTime t) const;

 private:
  std::vector<MetaRule> rules_;
  std::vector<int> convenience_ids_;
  std::vector<int> necessity_ids_;
};

/// The six convenience rules of Table II (flat experiments), targeting
/// unit 0. `budget_kwh` adds the matching "Set kWh Limit" row if positive.
MetaRuleTable FlatMrt(double budget_kwh = 0.0);

/// Builds a per-unit MRT for a replicated dataset: `units` copies of the
/// flat table with uniformly random variations of magnitude `variation`
/// (0 reproduces the flat table exactly; the paper uses variations for the
/// house and dorms datasets). Temperature values are perturbed by up to
/// ±2·variation °C, light values by ±15·variation, window edges by up to
/// ±60·variation minutes.
MetaRuleTable VariedMrt(int units, double variation, uint64_t seed,
                        double budget_kwh = 0.0);

}  // namespace rules
}  // namespace imcf

#endif  // IMCF_RULES_META_RULE_H_
