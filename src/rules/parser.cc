#include "rules/parser.h"

#include <cmath>

#include "common/strings.h"

namespace imcf {
namespace rules {

namespace {

Result<RuleAction> ParseAction(const std::string& text) {
  const std::string a = ToLower(text);
  if (a == "set temperature" || a == "temperature" || a == "temp") {
    return RuleAction::kSetTemperature;
  }
  if (a == "set light" || a == "light") return RuleAction::kSetLight;
  if (a == "set kwh limit" || a == "kwh limit" || a == "kwh") {
    return RuleAction::kSetKwhLimit;
  }
  return Status::InvalidArgument("unknown action: '" + text + "'");
}

// Parses optional trailing "key=value" fields (unit=, user=, necessity=).
Status ApplyExtraField(const std::string& field, MetaRule* rule) {
  const auto kv = Split(field, '=');
  if (kv.size() != 2) {
    return Status::InvalidArgument("bad extra field: '" + field + "'");
  }
  const std::string key = ToLower(Trim(kv[0]));
  const std::string value = Trim(kv[1]);
  if (key == "unit") {
    IMCF_ASSIGN_OR_RETURN(int64_t unit, ParseInt(value));
    if (unit < 0) {
      return Status::OutOfRange("unit must be >= 0: '" + value + "'");
    }
    rule->unit = static_cast<int>(unit);
    return Status::Ok();
  }
  if (key == "user") {
    rule->user = value;
    return Status::Ok();
  }
  if (key == "priority") {
    IMCF_ASSIGN_OR_RETURN(int64_t p, ParseInt(value));
    rule->priority = static_cast<int>(p);
    return Status::Ok();
  }
  if (key == "necessity") {
    rule->necessity = ToLower(value) == "true" || value == "1";
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown extra field key: '" + key + "'");
}

}  // namespace

Result<MetaRule> ParseMetaRuleLine(std::string_view line) {
  const std::vector<std::string> fields = Split(line, '|');
  if (fields.size() < 4) {
    return Status::InvalidArgument(
        "meta-rule needs 'description | window | action | value': '" +
        std::string(line) + "'");
  }
  MetaRule rule;
  rule.description = Trim(fields[0]);
  if (rule.description.empty()) {
    return Status::InvalidArgument("meta-rule description is empty: '" +
                                   std::string(line) + "'");
  }
  IMCF_ASSIGN_OR_RETURN(rule.action, ParseAction(Trim(fields[2])));
  IMCF_ASSIGN_OR_RETURN(rule.value, ParseDouble(fields[3]));
  if (!std::isfinite(rule.value)) {
    return Status::OutOfRange("meta-rule value must be finite: '" +
                              Trim(fields[3]) + "'");
  }
  if (rule.IsConvenience()) {
    IMCF_ASSIGN_OR_RETURN(rule.window, ParseTimeWindow(Trim(fields[1])));
  } else {
    // kWh-limit rows carry a freeform duration ("for three years"); the
    // budget period is governed by the amortization plan instead.
    rule.necessity = true;
  }
  for (size_t i = 4; i < fields.size(); ++i) {
    IMCF_RETURN_IF_ERROR(ApplyExtraField(Trim(fields[i]), &rule));
  }
  if (rule.action == RuleAction::kSetLight &&
      (rule.value < 0.0 || rule.value > 100.0)) {
    return Status::OutOfRange("light value outside [0,100]");
  }
  if (rule.action == RuleAction::kSetTemperature &&
      (rule.value < -30.0 || rule.value > 50.0)) {
    return Status::OutOfRange(
        StrFormat("temperature setpoint outside [-30,50] C: %g", rule.value));
  }
  if (rule.action == RuleAction::kSetKwhLimit && rule.value <= 0.0) {
    return Status::OutOfRange(
        StrFormat("kWh limit must be positive: %g", rule.value));
  }
  return rule;
}

Result<MetaRuleTable> ParseMrt(std::string_view text) {
  MetaRuleTable table;
  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    IMCF_ASSIGN_OR_RETURN(MetaRule rule, ParseMetaRuleLine(line));
    IMCF_RETURN_IF_ERROR(table.Add(std::move(rule)));
  }
  return table;
}

std::string FormatMetaRule(const MetaRule& rule) {
  std::string window = rule.IsConvenience() ? rule.window.ToString()
                                            : std::string("long-term");
  std::string line =
      StrFormat("%s | %s | %s | %g", rule.description.c_str(), window.c_str(),
                RuleActionName(rule.action), rule.value);
  if (rule.unit != 0) line += StrFormat(" | unit=%d", rule.unit);
  if (!rule.user.empty()) line += " | user=" + rule.user;
  return line;
}

std::string FormatMrt(const MetaRuleTable& table) {
  std::string out;
  for (const MetaRule& rule : table.rules()) {
    out += FormatMetaRule(rule);
    out.push_back('\n');
  }
  return out;
}

Result<TriggerRule> ParseTriggerRuleLine(std::string_view line) {
  const std::vector<std::string> fields = Split(line, '|');
  if (fields.size() != 4) {
    return Status::InvalidArgument(
        "ifttt rule needs 'IF | THIS | THEN | THAT': '" + std::string(line) +
        "'");
  }
  const std::string field_name = ToLower(Trim(fields[0]));
  const std::string condition = Trim(fields[1]);
  IMCF_ASSIGN_OR_RETURN(RuleAction action, ParseAction(Trim(fields[2])));
  IMCF_ASSIGN_OR_RETURN(double value, ParseDouble(fields[3]));
  if (!std::isfinite(value)) {
    return Status::OutOfRange("trigger value must be finite: '" +
                              Trim(fields[3]) + "'");
  }

  if (field_name == "season") {
    const std::string s = ToLower(condition);
    weather::Season season;
    if (s == "winter") {
      season = weather::Season::kWinter;
    } else if (s == "spring") {
      season = weather::Season::kSpring;
    } else if (s == "summer") {
      season = weather::Season::kSummer;
    } else if (s == "autumn" || s == "fall") {
      season = weather::Season::kAutumn;
    } else {
      return Status::InvalidArgument("unknown season: '" + condition + "'");
    }
    return TriggerRule::OnSeason(season, action, value);
  }
  if (field_name == "weather") {
    const std::string s = ToLower(condition);
    if (s == "sunny") {
      return TriggerRule::OnWeather(weather::Sky::kSunny, action, value);
    }
    if (s == "cloudy") {
      return TriggerRule::OnWeather(weather::Sky::kCloudy, action, value);
    }
    return Status::InvalidArgument("unknown weather: '" + condition + "'");
  }
  if (field_name == "temperature" || field_name == "light level") {
    if (condition.empty()) {
      return Status::InvalidArgument("empty numeric condition");
    }
    TriggerOp op;
    size_t skip = 1;
    if (condition[0] == '>') {
      op = TriggerOp::kGreaterThan;
    } else if (condition[0] == '<') {
      op = TriggerOp::kLessThan;
    } else if (condition[0] == '=') {
      op = TriggerOp::kEquals;
    } else {
      op = TriggerOp::kEquals;
      skip = 0;
    }
    IMCF_ASSIGN_OR_RETURN(double threshold,
                          ParseDouble(condition.substr(skip)));
    if (!std::isfinite(threshold)) {
      return Status::OutOfRange("trigger threshold must be finite: '" +
                                condition + "'");
    }
    return field_name == "temperature"
               ? TriggerRule::OnTemperature(op, threshold, action, value)
               : TriggerRule::OnLightLevel(op, threshold, action, value);
  }
  if (field_name == "door") {
    const std::string s = ToLower(condition);
    if (s != "open" && s != "closed") {
      return Status::InvalidArgument("door condition must be Open/Closed");
    }
    return TriggerRule::OnDoor(s == "open", action, value);
  }
  return Status::InvalidArgument("unknown trigger field: '" + field_name +
                                 "'");
}

Result<TriggerRuleTable> ParseIfttt(std::string_view text) {
  TriggerRuleTable table;
  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    IMCF_ASSIGN_OR_RETURN(TriggerRule rule, ParseTriggerRuleLine(line));
    table.Add(rule);
  }
  return table;
}

}  // namespace rules
}  // namespace imcf
