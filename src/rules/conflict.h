// Static conflict analysis of Meta-Rule-Tables.
//
// §I of the paper motivates IMCF with the deficiencies of unchecked rule
// sets: "rules competing or throwing a clash with each other, rules
// becoming infeasible to be satisfied and/or rules that their behavior
// depends on the output of other rules ... due to the complexity of
// current controllers to autonomously track and monitor a high number of
// rules" (citing firewall policy inference [9]). This analyzer surfaces
// those deficiencies *before* deployment:
//
//   * kClash    — two rules drive the same device during overlapping
//                 hours with different values; the later rule silently
//                 wins, the earlier one is never fully honoured.
//   * kShadowed — same, but with (near-)equal values: the earlier rule is
//                 redundant during the overlap.
//   * kBudgetInfeasible — the table's forecast demand exceeds the
//                 long-term budget, so the planner will have to drop rules
//                 (the "meta-rule that refers to the monthly energy budget
//                 ... will conflict with" actuation rules example).

#ifndef IMCF_RULES_CONFLICT_H_
#define IMCF_RULES_CONFLICT_H_

#include <functional>
#include <string>
#include <vector>

#include "rules/meta_rule.h"

namespace imcf {
namespace rules {

/// Conflict categories.
enum class ConflictKind : uint8_t {
  kClash = 0,
  kShadowed = 1,
  kBudgetInfeasible = 2,
};

const char* ConflictKindName(ConflictKind kind);

/// One detected conflict.
struct Conflict {
  ConflictKind kind = ConflictKind::kClash;
  int rule_a = -1;          ///< rule id (the earlier / losing rule)
  int rule_b = -1;          ///< rule id (the later / winning rule), or -1
  int overlap_minutes = 0;  ///< daily overlap of the two windows
  double severity = 0.0;    ///< |value difference| (clash) or kWh overrun
  std::string description;  ///< human-readable summary
};

/// Minutes per day two daily windows both cover (handles wrapping windows).
int WindowOverlapMinutes(const TimeWindow& a, const TimeWindow& b);

/// Per-device window conflicts: every pair of convenience rules targeting
/// the same (unit, device kind) with overlapping windows, classified as
/// kClash (different values) or kShadowed (values within `value_tolerance`).
std::vector<Conflict> FindWindowConflicts(const MetaRuleTable& table,
                                          double value_tolerance = 1e-9);

/// Budget feasibility: compares the table's forecast daily demand, via the
/// caller-supplied estimator (kWh for running `rule` during one hour at
/// hour-of-day `hour`), against the budget's mean daily allocation. Returns
/// a kBudgetInfeasible conflict when demand exceeds it.
std::vector<Conflict> CheckBudgetFeasibility(
    const MetaRuleTable& table, double budget_kwh, int period_days,
    const std::function<double(const MetaRule&, int hour)>& hourly_energy);

/// Formats a conflict report, one line per conflict.
std::string FormatConflicts(const std::vector<Conflict>& conflicts);

}  // namespace rules
}  // namespace imcf

#endif  // IMCF_RULES_CONFLICT_H_
