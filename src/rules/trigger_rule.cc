#include "rules/trigger_rule.h"

#include "common/strings.h"

namespace imcf {
namespace rules {

const char* TriggerFieldName(TriggerField field) {
  switch (field) {
    case TriggerField::kSeason:
      return "Season";
    case TriggerField::kWeather:
      return "Weather";
    case TriggerField::kTemperature:
      return "Temperature";
    case TriggerField::kLightLevel:
      return "Light Level";
    case TriggerField::kDoor:
      return "Door";
  }
  return "?";
}

namespace {

bool Compare(TriggerOp op, double lhs, double rhs) {
  switch (op) {
    case TriggerOp::kEquals:
      return lhs == rhs;
    case TriggerOp::kGreaterThan:
      return lhs > rhs;
    case TriggerOp::kLessThan:
      return lhs < rhs;
  }
  return false;
}

}  // namespace

bool TriggerRule::Matches(const EvaluationContext& ctx) const {
  switch (field) {
    case TriggerField::kSeason:
      return ctx.weather.season == season;
    case TriggerField::kWeather:
      return ctx.weather.sky == sky;
    case TriggerField::kTemperature:
      return Compare(op, ctx.ambient_temp_c, threshold);
    case TriggerField::kLightLevel:
      return Compare(op, ctx.ambient_light_pct, threshold);
    case TriggerField::kDoor:
      return ctx.door_open == door_open;
  }
  return false;
}

std::string TriggerRule::ToString() const {
  std::string cond;
  switch (field) {
    case TriggerField::kSeason:
      cond = weather::SeasonName(season);
      break;
    case TriggerField::kWeather:
      cond = weather::SkyName(sky);
      break;
    case TriggerField::kTemperature:
    case TriggerField::kLightLevel:
      cond = StrFormat("%s%.0f",
                       op == TriggerOp::kGreaterThan
                           ? ">"
                           : (op == TriggerOp::kLessThan ? "<" : "="),
                       threshold);
      break;
    case TriggerField::kDoor:
      cond = door_open ? "Open" : "Closed";
      break;
  }
  return StrFormat("IF %s %s THEN %s %.0f", TriggerFieldName(field),
                   cond.c_str(), RuleActionName(action), action_value);
}

TriggerRule TriggerRule::OnSeason(weather::Season s, RuleAction a, double v) {
  TriggerRule r;
  r.field = TriggerField::kSeason;
  r.season = s;
  r.action = a;
  r.action_value = v;
  return r;
}

TriggerRule TriggerRule::OnWeather(weather::Sky s, RuleAction a, double v) {
  TriggerRule r;
  r.field = TriggerField::kWeather;
  r.sky = s;
  r.action = a;
  r.action_value = v;
  return r;
}

TriggerRule TriggerRule::OnTemperature(TriggerOp op, double threshold,
                                       RuleAction a, double v) {
  TriggerRule r;
  r.field = TriggerField::kTemperature;
  r.op = op;
  r.threshold = threshold;
  r.action = a;
  r.action_value = v;
  return r;
}

TriggerRule TriggerRule::OnLightLevel(TriggerOp op, double threshold,
                                      RuleAction a, double v) {
  TriggerRule r;
  r.field = TriggerField::kLightLevel;
  r.op = op;
  r.threshold = threshold;
  r.action = a;
  r.action_value = v;
  return r;
}

TriggerRule TriggerRule::OnDoor(bool open, RuleAction a, double v) {
  TriggerRule r;
  r.field = TriggerField::kDoor;
  r.door_open = open;
  r.action = a;
  r.action_value = v;
  return r;
}

TriggerDecision TriggerRuleTable::Evaluate(const EvaluationContext& ctx,
                                           MatchPolicy policy) const {
  TriggerDecision decision;
  for (const TriggerRule& rule : rules_) {
    if (!rule.Matches(ctx)) continue;
    switch (rule.action) {
      case RuleAction::kSetTemperature:
        if (policy == MatchPolicy::kLastMatch || !decision.temperature) {
          decision.temperature = rule.action_value;
        }
        break;
      case RuleAction::kSetLight:
        if (policy == MatchPolicy::kLastMatch || !decision.light) {
          decision.light = rule.action_value;
        }
        break;
      case RuleAction::kSetKwhLimit:
        break;  // not expressible in IFTTT
    }
  }
  return decision;
}

TriggerRuleTable FlatIfttt() {
  using weather::Season;
  using weather::Sky;
  TriggerRuleTable table;
  // Table III, in row order.
  table.Add(TriggerRule::OnSeason(Season::kSummer,
                                  RuleAction::kSetTemperature, 25.0));
  table.Add(TriggerRule::OnSeason(Season::kWinter,
                                  RuleAction::kSetTemperature, 20.0));
  table.Add(
      TriggerRule::OnWeather(Sky::kSunny, RuleAction::kSetTemperature, 20.0));
  table.Add(
      TriggerRule::OnWeather(Sky::kCloudy, RuleAction::kSetTemperature, 22.0));
  table.Add(TriggerRule::OnWeather(Sky::kSunny, RuleAction::kSetLight, 0.0));
  table.Add(TriggerRule::OnWeather(Sky::kCloudy, RuleAction::kSetLight, 40.0));
  table.Add(TriggerRule::OnTemperature(TriggerOp::kGreaterThan, 30.0,
                                       RuleAction::kSetTemperature, 23.0));
  table.Add(TriggerRule::OnTemperature(TriggerOp::kLessThan, 10.0,
                                       RuleAction::kSetTemperature, 24.0));
  table.Add(TriggerRule::OnLightLevel(TriggerOp::kGreaterThan, 15.0,
                                      RuleAction::kSetLight, 9.0));
  table.Add(TriggerRule::OnDoor(true, RuleAction::kSetLight, 0.0));
  return table;
}

}  // namespace rules
}  // namespace imcf
