// Text format for rule tables.
//
// The paper's GUI stores MRT rows with a description, time/duration, action
// and value (Table II) and IFTTT rows as IF/THIS/THEN/THAT (Table III). This
// parser accepts the same shapes as pipe-separated lines so rule tables can
// be configured from files, tests and the example binaries:
//
//   # meta-rules
//   Night Heat        | 01:00 - 07:00   | Set Temperature | 25
//   Energy Flat       | for three years | Set kWh Limit   | 11000
//   Day Heat (unit 2) | 08:00 - 16:00   | Set Temperature | 22 | unit=2
//
//   # ifttt recipes
//   Season      | Summer | Set Temperature | 25
//   Temperature | >30    | Set Temperature | 23
//   Door        | Open   | Set Light       | 0

#ifndef IMCF_RULES_PARSER_H_
#define IMCF_RULES_PARSER_H_

#include <string>
#include <string_view>

#include "rules/meta_rule.h"
#include "rules/trigger_rule.h"

namespace imcf {
namespace rules {

/// Parses one MRT line (no comments/blank lines).
Result<MetaRule> ParseMetaRuleLine(std::string_view line);

/// Parses a whole MRT document ('#' comments and blank lines allowed).
Result<MetaRuleTable> ParseMrt(std::string_view text);

/// Formats a rule as a parseable line.
std::string FormatMetaRule(const MetaRule& rule);

/// Formats a whole table (round-trips through ParseMrt).
std::string FormatMrt(const MetaRuleTable& table);

/// Parses one IFTTT line.
Result<TriggerRule> ParseTriggerRuleLine(std::string_view line);

/// Parses a whole IFTTT document ('#' comments and blank lines allowed).
Result<TriggerRuleTable> ParseIfttt(std::string_view text);

}  // namespace rules
}  // namespace imcf

#endif  // IMCF_RULES_PARSER_H_
