// IFTTT-style trigger-action rules (the paper's Table III baseline).
//
// Each rule is an "IF <field> <condition> THEN <action> <value>" row.
// Unlike meta-rules they have no time windows, no priorities and no budget
// awareness — they fire whenever their trigger condition holds, which is
// exactly why the paper uses them as the energy-oblivious baseline.

#ifndef IMCF_RULES_TRIGGER_RULE_H_
#define IMCF_RULES_TRIGGER_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "rules/context.h"
#include "rules/meta_rule.h"

namespace imcf {
namespace rules {

/// Trigger ("IF") column of Table III.
enum class TriggerField : uint8_t {
  kSeason = 0,       ///< Summer / Winter / ...
  kWeather = 1,      ///< Sunny / Cloudy
  kTemperature = 2,  ///< indoor temperature threshold
  kLightLevel = 3,   ///< indoor light threshold
  kDoor = 4,         ///< door open / closed
};

const char* TriggerFieldName(TriggerField field);

/// Comparison used for numeric triggers.
enum class TriggerOp : uint8_t { kEquals = 0, kGreaterThan = 1, kLessThan = 2 };

/// One trigger-action recipe.
struct TriggerRule {
  TriggerField field = TriggerField::kSeason;
  TriggerOp op = TriggerOp::kEquals;
  double threshold = 0.0;                      ///< numeric triggers
  weather::Season season = weather::Season::kWinter;  ///< season triggers
  weather::Sky sky = weather::Sky::kSunny;     ///< weather triggers
  bool door_open = true;                       ///< door triggers
  RuleAction action = RuleAction::kSetTemperature;
  double action_value = 0.0;

  /// True iff the trigger condition holds in `ctx`.
  bool Matches(const EvaluationContext& ctx) const;

  /// Human-readable "IF ... THEN ..." form.
  std::string ToString() const;

  // -- constructors mirroring the Table III row shapes --
  static TriggerRule OnSeason(weather::Season s, RuleAction a, double v);
  static TriggerRule OnWeather(weather::Sky s, RuleAction a, double v);
  static TriggerRule OnTemperature(TriggerOp op, double threshold,
                                   RuleAction a, double v);
  static TriggerRule OnLightLevel(TriggerOp op, double threshold,
                                  RuleAction a, double v);
  static TriggerRule OnDoor(bool open, RuleAction a, double v);
};

/// What the recipe table decided for one unit at one instant: at most one
/// setpoint per device family (later/earlier rows win per MatchPolicy).
struct TriggerDecision {
  std::optional<double> temperature;
  std::optional<double> light;
};

/// How conflicting recipes are resolved. The paper calls IFTTT "an
/// arbitrary sequence of rule executions"; with kLastMatch the table is
/// executed top to bottom and later writers win (the behaviour of firing
/// every applet), with kFirstMatch the first matching row per device wins.
enum class MatchPolicy { kLastMatch, kFirstMatch };

/// An ordered IFTTT recipe table.
class TriggerRuleTable {
 public:
  void Add(TriggerRule rule) { rules_.push_back(rule); }

  const std::vector<TriggerRule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Evaluates the table against a context.
  TriggerDecision Evaluate(const EvaluationContext& ctx,
                           MatchPolicy policy = MatchPolicy::kLastMatch) const;

 private:
  std::vector<TriggerRule> rules_;
};

/// The ten recipes of Table III ("IFTTT configurations for flat
/// experiment").
TriggerRuleTable FlatIfttt();

}  // namespace rules
}  // namespace imcf

#endif  // IMCF_RULES_TRIGGER_RULE_H_
