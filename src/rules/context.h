// Evaluation context: the sensor/weather snapshot rules are evaluated
// against at one instant. Assembled by the simulator (from the ambient
// series) or the live controller (from item states).

#ifndef IMCF_RULES_CONTEXT_H_
#define IMCF_RULES_CONTEXT_H_

#include "common/time.h"
#include "weather/weather.h"

namespace imcf {
namespace rules {

/// Snapshot of one building unit's environment at time `time`.
struct EvaluationContext {
  SimTime time = 0;
  weather::WeatherSample weather;
  double ambient_temp_c = 0.0;    ///< indoor temperature
  double ambient_light_pct = 0.0; ///< indoor light level, 0-100
  bool door_open = false;
};

}  // namespace rules
}  // namespace imcf

#endif  // IMCF_RULES_CONTEXT_H_
