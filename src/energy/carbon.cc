#include "energy/carbon.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/units.h"

namespace imcf {
namespace energy {

namespace {

constexpr double kTau = 2.0 * M_PI;

}  // namespace

CarbonProfile::CarbonProfile(CarbonProfileOptions options)
    : options_(options) {}

double CarbonProfile::IntensityAt(SimTime t) const {
  const double hour = static_cast<double>(MinuteOfDay(t)) / 60.0;
  const double doy = static_cast<double>(DayOfYear(t));

  // Seasonal baseload: dirtier in winter (more fossil heat/light demand).
  const double seasonal =
      options_.winter_shift_g * std::cos(kTau * (doy - 15.0) / 365.25);

  // Midday solar dip: a sine arch between ~8:00 and ~18:00, deeper in
  // summer (longer, stronger sun).
  double solar = 0.0;
  if (hour > 8.0 && hour < 18.0) {
    const double arch = std::sin(M_PI * (hour - 8.0) / 10.0);
    const double season_strength =
        0.65 + 0.35 * std::cos(kTau * (doy - 196.0) / 365.25);
    solar = options_.solar_dip_g * arch * season_strength;
  }

  // Evening fossil peakers.
  double peak = 0.0;
  if (hour >= 18.0 && hour <= 22.0) {
    peak = options_.evening_peak_g * std::sin(M_PI * (hour - 18.0) / 4.0);
  }

  // Deterministic per-day offset (wind variability).
  const int64_t day = t >= 0 ? t / kSecondsPerDay
                             : (t - kSecondsPerDay + 1) / kSecondsPerDay;
  const uint64_t h =
      MixHash(options_.seed ^ 0xC02ULL, static_cast<uint64_t>(day));
  double sum = 0.0;
  for (int i = 0; i < 4; ++i) {
    sum += static_cast<double>(MixHash(h, static_cast<uint64_t>(i)) >> 11) *
           0x1.0p-53;
  }
  const double noise =
      options_.day_noise_g * (sum - 2.0) / std::sqrt(4.0 / 12.0);

  const double intensity =
      options_.base_g_per_kwh + seasonal - solar + peak + noise;
  return std::max(intensity, 20.0);  // grids are never carbon-free
}

double CarbonProfile::DailyMean(SimTime t) const {
  const SimTime day_start = (t / kSecondsPerDay) * kSecondsPerDay;
  double sum = 0.0;
  for (int h = 0; h < 24; ++h) {
    sum += IntensityAt(day_start + h * kSecondsPerHour +
                       kSecondsPerHour / 2);
  }
  return sum / 24.0;
}

std::vector<double> CarbonTiltWeights(const CarbonProfile& profile,
                                      SimTime day_start, double alpha) {
  std::vector<double> weights(24, 1.0);
  if (alpha == 0.0) return weights;
  double intensities[24];
  double mean = 0.0;
  for (int h = 0; h < 24; ++h) {
    intensities[h] = profile.IntensityAt(day_start + h * kSecondsPerHour +
                                         kSecondsPerHour / 2);
    mean += intensities[h];
  }
  mean /= 24.0;
  double weight_sum = 0.0;
  for (int h = 0; h < 24; ++h) {
    weights[static_cast<size_t>(h)] =
        std::max(0.0, 1.0 + alpha * (mean - intensities[h]) / mean);
    weight_sum += weights[static_cast<size_t>(h)];
  }
  // Renormalise so the day's total budget is conserved exactly.
  for (double& w : weights) w *= 24.0 / weight_sum;
  return weights;
}

}  // namespace energy
}  // namespace imcf
