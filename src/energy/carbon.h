// Grid carbon-intensity model and carbon-aware budget tilting.
//
// The paper's future work (§V) targets "CO2 reductions methods with
// algorithms geared towards the environment". This module provides the two
// pieces that need: a deterministic grid carbon-intensity profile
// (gCO2/kWh as a function of time — midday solar dips, evening fossil
// peaks, seasonal base shift), and a *budget tilt* that reshapes the
// amortized hourly budgets within each day so the planner spends when the
// grid is clean, at the same total energy. The simulator reports the CO2
// footprint of every run; bench_ablation_carbon sweeps the tilt strength.

#ifndef IMCF_ENERGY_CARBON_H_
#define IMCF_ENERGY_CARBON_H_

#include <vector>

#include "common/time.h"

namespace imcf {
namespace energy {

/// Parameters of the synthetic grid mix.
struct CarbonProfileOptions {
  double base_g_per_kwh = 420.0;     ///< annual mean intensity
  double solar_dip_g = 140.0;        ///< midday reduction at full sun
  double evening_peak_g = 90.0;      ///< fossil peaker bump (18:00-22:00)
  double winter_shift_g = 60.0;      ///< winters run dirtier baseload
  uint64_t seed = 5;                 ///< day-to-day variability
  double day_noise_g = 25.0;         ///< stddev of the per-day offset
};

/// Deterministic intensity curve: pure function of time.
class CarbonProfile {
 public:
  explicit CarbonProfile(CarbonProfileOptions options = {});

  /// Grid intensity at `t` in gCO2 per kWh (always positive).
  double IntensityAt(SimTime t) const;

  /// Mean intensity over the day containing `t` (24 hourly samples).
  double DailyMean(SimTime t) const;

  const CarbonProfileOptions& options() const { return options_; }

 private:
  CarbonProfileOptions options_;
};

/// Multiplicative budget tilts for one day: hour h of the day gets weight
/// w_h with mean exactly 1, where w_h = 1 + alpha * (mean - I_h) / mean.
/// alpha = 0 leaves budgets untouched; alpha = 1 shifts aggressively toward
/// clean hours. Clamped to stay non-negative.
std::vector<double> CarbonTiltWeights(const CarbonProfile& profile,
                                      SimTime day_start, double alpha);

}  // namespace energy
}  // namespace imcf

#endif  // IMCF_ENERGY_CARBON_H_
