#include "energy/amortization.h"

#include <algorithm>

#include "common/strings.h"

namespace imcf {
namespace energy {

const char* AmortizationKindName(AmortizationKind kind) {
  switch (kind) {
    case AmortizationKind::kLaf:
      return "LAF";
    case AmortizationKind::kBlaf:
      return "BLAF";
    case AmortizationKind::kEaf:
      return "EAF";
  }
  return "?";
}

namespace {

bool IsBalloon(const AmortizationOptions& options, int month) {
  return std::find(options.balloon_months.begin(),
                   options.balloon_months.end(),
                   month) != options.balloon_months.end();
}

}  // namespace

std::vector<AmortizationPlan::MonthSlot> AmortizationPlan::EnumerateMonths(
    SimTime period_start, SimTime period_end) {
  std::vector<MonthSlot> out;
  const CivilTime ct = ToCivil(period_start);
  SimTime month_start = FromCivil(ct.year, ct.month, 1);
  while (month_start < period_end) {
    const CivilTime mc = ToCivil(month_start);
    int next_year = mc.year;
    int next_month = mc.month + 1;
    if (next_month > 12) {
      next_month = 1;
      ++next_year;
    }
    const SimTime month_end = FromCivil(next_year, next_month, 1);
    MonthSlot slot;
    slot.start = std::max(month_start, period_start);
    slot.end = std::min(month_end, period_end);
    slot.month = mc.month;
    slot.year = mc.year;
    slot.hours = static_cast<double>(slot.end - slot.start) / kSecondsPerHour;
    if (slot.hours > 0) out.push_back(slot);
    month_start = month_end;
  }
  return out;
}

Result<AmortizationPlan> AmortizationPlan::Create(
    const AmortizationOptions& options, const Ecp& ecp) {
  if (options.period_end <= options.period_start) {
    return Status::InvalidArgument("amortization period is empty");
  }
  if (options.total_budget_kwh <= 0.0) {
    return Status::InvalidArgument("total budget must be positive");
  }
  if (options.balloon_fraction < 0.0 || options.balloon_fraction >= 1.0) {
    return Status::OutOfRange("balloon fraction must be in [0, 1)");
  }
  for (int m : options.balloon_months) {
    if (m < 1 || m > 12) {
      return Status::OutOfRange(StrFormat("balloon month %d out of range", m));
    }
  }

  AmortizationPlan plan(options);
  plan.slots_ = EnumerateMonths(options.period_start, options.period_end);
  double total_hours = 0.0;
  for (const MonthSlot& s : plan.slots_) total_hours += s.hours;
  const double e = options.total_budget_kwh;

  switch (options.kind) {
    case AmortizationKind::kLaf: {
      // Eq. 3: uniform E_p = TE / t at every slot.
      for (MonthSlot& s : plan.slots_) {
        s.budget_kwh = e * s.hours / total_hours;
      }
      break;
    }
    case AmortizationKind::kBlaf: {
      // Eq. 4: balloon months forfeit fraction π of their uniform share σ,
      // redistributed over the remaining months. Conserves E exactly.
      double balloon_hours = 0.0;
      for (const MonthSlot& s : plan.slots_) {
        if (IsBalloon(options, s.month)) balloon_hours += s.hours;
      }
      const double other_hours = total_hours - balloon_hours;
      const double sigma =
          e * (balloon_hours / total_hours) * options.balloon_fraction;
      for (MonthSlot& s : plan.slots_) {
        const double base = e * s.hours / total_hours;
        if (IsBalloon(options, s.month) && balloon_hours > 0.0) {
          s.budget_kwh = base - sigma * s.hours / balloon_hours;
        } else if (!IsBalloon(options, s.month) && other_hours > 0.0) {
          s.budget_kwh = base + sigma * s.hours / other_hours;
        } else {
          s.budget_kwh = base;
        }
      }
      break;
    }
    case AmortizationKind::kEaf: {
      // Eq. 5: shares proportional to the ECP weight of the month, scaled
      // by the fraction of the month inside the period, renormalised so
      // partial periods still spend exactly E.
      double share_sum = 0.0;
      std::vector<double> shares(plan.slots_.size());
      for (size_t i = 0; i < plan.slots_.size(); ++i) {
        const MonthSlot& s = plan.slots_[i];
        const double month_hours = DaysInMonth(s.year, s.month) * 24.0;
        shares[i] = ecp.Weight(s.month) * (s.hours / month_hours);
        share_sum += shares[i];
      }
      for (size_t i = 0; i < plan.slots_.size(); ++i) {
        plan.slots_[i].budget_kwh =
            share_sum > 0.0 ? e * shares[i] / share_sum : 0.0;
      }
      break;
    }
  }
  return plan;
}

const AmortizationPlan::MonthSlot* AmortizationPlan::FindSlot(SimTime t) const {
  // Slots are sorted by time; binary search on start.
  auto it = std::upper_bound(
      slots_.begin(), slots_.end(), t,
      [](SimTime value, const MonthSlot& s) { return value < s.start; });
  if (it == slots_.begin()) return nullptr;
  --it;
  return (t >= it->start && t < it->end) ? &*it : nullptr;
}

double AmortizationPlan::HourlyBudget(SimTime t) const {
  const MonthSlot* slot = FindSlot(t);
  if (slot == nullptr || slot->hours <= 0.0) return 0.0;
  return slot->budget_kwh / slot->hours;
}

double AmortizationPlan::MonthBudget(SimTime t) const {
  const MonthSlot* slot = FindSlot(t);
  return slot == nullptr ? 0.0 : slot->budget_kwh;
}

double AmortizationPlan::TotalBudget() const {
  double total = 0.0;
  for (const MonthSlot& s : slots_) total += s.budget_kwh;
  return total;
}

}  // namespace energy
}  // namespace imcf
