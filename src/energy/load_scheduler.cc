#include "energy/load_scheduler.h"

#include <algorithm>

namespace imcf {
namespace energy {

const char* PlacementPolicyName(PlacementPolicy policy) {
  return policy == PlacementPolicy::kEarliest ? "earliest" : "carbon-aware";
}

std::vector<ShiftableLoad> DefaultShiftableLoads() {
  return {
      {"ev-charger", 3.7, 3, 0, 23},
      {"washing-machine", 2.0, 2, 8, 22},
      {"dishwasher", 1.8, 2, 12, 23},
      {"water-heater-boost", 2.5, 1, 5, 21},
  };
}

Result<std::vector<Placement>> ScheduleDay(
    const std::vector<ShiftableLoad>& loads, const CarbonProfile& profile,
    SimTime day_start, PlacementPolicy policy,
    std::vector<double>* headroom_kwh) {
  if (headroom_kwh == nullptr || headroom_kwh->size() != 24) {
    return Status::InvalidArgument("headroom must have 24 hourly entries");
  }
  for (const ShiftableLoad& load : loads) {
    if (load.power_kw <= 0.0 || load.duration_hours <= 0 ||
        load.duration_hours > 24 || load.earliest_hour < 0 ||
        load.latest_hour > 23 || load.earliest_hour > load.latest_hour) {
      return Status::InvalidArgument("bad shiftable load: " + load.name);
    }
  }

  // Hourly intensities once per day.
  double intensity[24];
  for (int h = 0; h < 24; ++h) {
    intensity[h] = profile.IntensityAt(day_start + h * kSecondsPerHour +
                                       kSecondsPerHour / 2);
  }

  // Big rocks first: the largest runs have the least placement freedom.
  std::vector<const ShiftableLoad*> order;
  order.reserve(loads.size());
  for (const ShiftableLoad& load : loads) order.push_back(&load);
  std::stable_sort(order.begin(), order.end(),
                   [](const ShiftableLoad* a, const ShiftableLoad* b) {
                     return a->EnergyKwh() > b->EnergyKwh();
                   });

  std::vector<Placement> placements;
  placements.reserve(loads.size());
  for (const ShiftableLoad* load : order) {
    Placement placement;
    placement.load = load->name;
    placement.energy_kwh = load->EnergyKwh();

    const int last_start = load->latest_hour - load->duration_hours + 1;
    double best_co2 = 0.0;
    for (int start = load->earliest_hour; start <= last_start; ++start) {
      bool fits = true;
      double co2 = 0.0;
      for (int h = start; h < start + load->duration_hours; ++h) {
        if ((*headroom_kwh)[static_cast<size_t>(h)] < load->power_kw) {
          fits = false;
          break;
        }
        co2 += load->power_kw * intensity[h];
      }
      if (!fits) continue;
      if (placement.start_hour < 0 || co2 < best_co2) {
        placement.start_hour = start;
        best_co2 = co2;
      }
      if (policy == PlacementPolicy::kEarliest) break;  // first feasible
    }
    if (placement.start_hour >= 0) {
      placement.co2_g = best_co2;
      for (int h = placement.start_hour;
           h < placement.start_hour + load->duration_hours; ++h) {
        (*headroom_kwh)[static_cast<size_t>(h)] -= load->power_kw;
      }
    } else {
      placement.energy_kwh = 0.0;  // not served today
    }
    placements.push_back(std::move(placement));
  }
  return placements;
}

double TotalCo2G(const std::vector<Placement>& placements) {
  double total = 0.0;
  for (const Placement& p : placements) total += p.co2_g;
  return total;
}

}  // namespace energy
}  // namespace imcf
