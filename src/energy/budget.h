// Budget ledger: runtime accounting of energy consumption against an
// amortization plan.
//
// The simulator and the live controller charge every executed actuation to
// the ledger; reports and the Fig. 6/9 benchmarks read consumption totals
// and per-month aggregates from it. The ledger also tracks the *carryover*
// semantics of the paper's smart-home scenario (net metering: unused budget
// in one slot remains available later within the period).

#ifndef IMCF_ENERGY_BUDGET_H_
#define IMCF_ENERGY_BUDGET_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "energy/amortization.h"

namespace imcf {
namespace energy {

/// Tracks charged energy over a plan period.
class BudgetLedger {
 public:
  explicit BudgetLedger(const AmortizationPlan* plan) : plan_(plan) {}

  /// Charges `kwh` consumed during the hour containing `t`.
  void Charge(SimTime t, double kwh);

  /// Total energy charged so far.
  double TotalConsumedKwh() const { return total_; }

  /// Energy charged in the calendar month containing `t`.
  double MonthConsumedKwh(SimTime t) const;

  /// Cumulative plan budget from the period start through the end of the
  /// hour containing `t`.
  double CumulativeBudgetKwh(SimTime t) const;

  /// Budget headroom accumulated so far: cumulative budget minus consumed
  /// (positive when the user is under-spending — the net-metering balance).
  double CarryoverKwh(SimTime t) const {
    return CumulativeBudgetKwh(t) - total_;
  }

  /// True iff total consumption is within the whole-period budget.
  bool WithinTotalBudget() const {
    return total_ <= plan_->TotalBudget() + 1e-9;
  }

  /// Per-month consumption, keyed by (year * 100 + month).
  const std::map<int, double>& monthly_consumption() const {
    return monthly_;
  }

 private:
  const AmortizationPlan* plan_;  // not owned
  double total_ = 0.0;
  std::map<int, double> monthly_;
};

}  // namespace energy
}  // namespace imcf

#endif  // IMCF_ENERGY_BUDGET_H_
