// Energy Consumption Profile (ECP).
//
// An ECP is the per-month historical consumption vector of a residence
// (Table I of the paper: the flat consumes 775.50 kWh in January, ...,
// 3666 kWh total per year). The amortization plan derives per-period energy
// budget constraints from it.

#ifndef IMCF_ENERGY_ECP_H_
#define IMCF_ENERGY_ECP_H_

#include <vector>

#include "common/result.h"
#include "common/time.h"

namespace imcf {
namespace energy {

/// A twelve-entry monthly consumption profile.
class Ecp {
 public:
  /// Builds from 12 monthly kWh figures (January first). All entries must
  /// be non-negative and the total positive.
  static Result<Ecp> FromMonthly(std::vector<double> monthly_kwh);

  /// Total yearly energy TE (sum of the months).
  double TotalKwh() const { return total_; }

  /// Consumption of `month` (1..12) in kWh.
  double MonthKwh(int month) const {
    return monthly_[static_cast<size_t>(month - 1)];
  }

  /// Normalized weight w_i = ECP_i / TE of `month` (1..12). Weights sum
  /// to 1 (Eq. 5; the paper's w_i = TE/ECP_i is a typo — those cannot sum
  /// to one).
  double Weight(int month) const { return MonthKwh(month) / total_; }

  /// Average per-hour consumption of `month` in `year` (Table I column 3,
  /// using the real hour count of the month).
  double MonthKwhPerHour(int year, int month) const {
    return MonthKwh(month) /
           (DaysInMonth(year, month) * 24.0);
  }

  /// A copy with every month scaled by `factor` (used to size the house
  /// and dorm profiles from the flat profile).
  Ecp Scaled(double factor) const;

  const std::vector<double>& monthly() const { return monthly_; }

 private:
  Ecp(std::vector<double> monthly, double total)
      : monthly_(std::move(monthly)), total_(total) {}

  std::vector<double> monthly_;
  double total_;
};

/// The flat's ECP exactly as in Table I.
Ecp FlatEcp();

}  // namespace energy
}  // namespace imcf

#endif  // IMCF_ENERGY_ECP_H_
