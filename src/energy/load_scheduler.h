// Shiftable-workload scheduling (the paper's §V future work: "power
// workload identification methods for power-hungry devices (e.g., white
// devices, electric vehicles, heating) and how to reschedule those
// workloads in an environmental friendly manner").
//
// A ShiftableLoad is a deferrable appliance run — a washing-machine cycle,
// an EV charge — that needs a contiguous block of hours somewhere inside a
// daily window. Unlike convenience rules, shiftable loads don't care *when*
// they run, which is exactly the flexibility carbon-aware operation needs:
// the scheduler places each run into the cleanest feasible hours of the
// day, subject to per-hour budget headroom.

#ifndef IMCF_ENERGY_LOAD_SCHEDULER_H_
#define IMCF_ENERGY_LOAD_SCHEDULER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "energy/carbon.h"

namespace imcf {
namespace energy {

/// One deferrable appliance run.
struct ShiftableLoad {
  std::string name;
  double power_kw = 0.0;   ///< constant draw while running
  int duration_hours = 1;  ///< contiguous run length
  int earliest_hour = 0;   ///< first hour of the daily window (0..23)
  int latest_hour = 23;    ///< last hour the run may still be *running*

  double EnergyKwh() const { return power_kw * duration_hours; }
};

/// The typical household's shiftable fleet (washer, dishwasher, EV).
std::vector<ShiftableLoad> DefaultShiftableLoads();

/// Where a load ended up.
struct Placement {
  std::string load;
  int start_hour = -1;     ///< -1: could not be placed this day
  double energy_kwh = 0.0;
  double co2_g = 0.0;      ///< emissions of the placed run
};

/// Scheduling strategies compared in bench_ablation_carbon.
enum class PlacementPolicy {
  kEarliest,     ///< naive: first feasible slot (what people do by hand)
  kCarbonAware,  ///< cleanest feasible block of the day
};

const char* PlacementPolicyName(PlacementPolicy policy);

/// Places every load into one day. `headroom_kwh` is the per-hour budget
/// headroom (24 entries) and is decremented in place as loads are placed;
/// loads that fit nowhere get start_hour = -1. Loads are placed in
/// decreasing energy order (big rocks first).
Result<std::vector<Placement>> ScheduleDay(
    const std::vector<ShiftableLoad>& loads, const CarbonProfile& profile,
    SimTime day_start, PlacementPolicy policy,
    std::vector<double>* headroom_kwh);

/// Total emissions of a placement set (unplaced loads contribute nothing).
double TotalCo2G(const std::vector<Placement>& placements);

}  // namespace energy
}  // namespace imcf

#endif  // IMCF_ENERGY_LOAD_SCHEDULER_H_
