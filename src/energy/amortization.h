// Amortization Plan (the AP subroutine of Algorithm 1).
//
// The AP converts a long-term energy budget into the per-slot constraint
// E_p the Energy Planner enforces. Three strategies from the paper:
//
//  * LAF  (Eq. 3) — Linear: the budget is spread uniformly over the period.
//  * BLAF (Eq. 4) — Balloon Linear: a fraction π of the budget is saved
//    during the balloon months λ and released during the remaining months
//    λ', for seasons where consumption is structurally higher. The plan
//    conserves the total budget exactly.
//  * EAF  (Eq. 5) — ECP-based: each month receives budget proportional to
//    its weight w_i = ECP_i / TE in the historical consumption profile, so
//    the constraint tracks the seasonal demand shape.
//
// All strategies expose the constraint at hourly granularity (the paper's
// default slot; E_h in the running examples).

#ifndef IMCF_ENERGY_AMORTIZATION_H_
#define IMCF_ENERGY_AMORTIZATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "energy/ecp.h"

namespace imcf {
namespace energy {

/// Amortization formula selector (switch in Algorithm 1 lines 2-5).
enum class AmortizationKind { kLaf, kBlaf, kEaf };

const char* AmortizationKindName(AmortizationKind kind);

/// Configuration of an amortization plan.
struct AmortizationOptions {
  AmortizationKind kind = AmortizationKind::kEaf;
  double total_budget_kwh = 0.0;  ///< E: budget for the whole period
  SimTime period_start = 0;       ///< p: inclusive start
  SimTime period_end = 0;         ///< p: exclusive end

  // BLAF parameters.
  double balloon_fraction = 0.30;            ///< π
  std::vector<int> balloon_months =          ///< λ: months that save
      {4, 5, 6, 7, 8, 9, 10};
};

/// A materialised amortization plan: per-slot budget constraints over the
/// period.
class AmortizationPlan {
 public:
  /// Validates the options and builds the plan. The ECP is only consulted
  /// for EAF but always required (mirrors AP(apl, p, ECP) in Alg. 1).
  static Result<AmortizationPlan> Create(const AmortizationOptions& options,
                                         const Ecp& ecp);

  /// E_p for the hour slot containing `t` (kWh). Zero outside the period.
  double HourlyBudget(SimTime t) const;

  /// Budget allocated to the calendar month containing `t`.
  double MonthBudget(SimTime t) const;

  /// Total budget over the period (== options.total_budget_kwh up to
  /// rounding).
  double TotalBudget() const;

  AmortizationKind kind() const { return options_.kind; }
  const AmortizationOptions& options() const { return options_; }

  /// One calendar-month slice of the plan period with its allocated budget.
  struct MonthSlot {
    SimTime start = 0;       ///< overlap start with the period
    SimTime end = 0;         ///< overlap end (exclusive)
    int month = 1;           ///< 1..12
    int year = 1970;
    double hours = 0.0;      ///< overlap duration
    double budget_kwh = 0.0; ///< budget allocated to this slice
  };

  /// The materialised monthly allocation (36 slots for a 3-year period).
  const std::vector<MonthSlot>& slots() const { return slots_; }

 private:
  explicit AmortizationPlan(AmortizationOptions options)
      : options_(std::move(options)) {}

  static std::vector<MonthSlot> EnumerateMonths(SimTime period_start,
                                                SimTime period_end);
  const MonthSlot* FindSlot(SimTime t) const;

  AmortizationOptions options_;
  std::vector<MonthSlot> slots_;
};

}  // namespace energy
}  // namespace imcf

#endif  // IMCF_ENERGY_AMORTIZATION_H_
