#include "energy/ecp.h"

#include "common/strings.h"

namespace imcf {
namespace energy {

Result<Ecp> Ecp::FromMonthly(std::vector<double> monthly_kwh) {
  if (monthly_kwh.size() != 12) {
    return Status::InvalidArgument(
        StrFormat("ECP needs 12 months, got %zu", monthly_kwh.size()));
  }
  double total = 0.0;
  for (double m : monthly_kwh) {
    if (m < 0.0) return Status::InvalidArgument("negative monthly energy");
    total += m;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("ECP total must be positive");
  }
  return Ecp(std::move(monthly_kwh), total);
}

Ecp Ecp::Scaled(double factor) const {
  std::vector<double> scaled = monthly_;
  for (double& m : scaled) m *= factor;
  return Ecp(std::move(scaled), total_ * factor);
}

Ecp FlatEcp() {
  // Table I, "kWh per month".
  auto ecp = Ecp::FromMonthly({775.50, 528.75, 246.75, 141.00, 176.25, 211.50,
                               246.75, 317.25, 211.50, 176.25, 211.50,
                               423.00});
  return *ecp;  // the static table is valid by construction
}

}  // namespace energy
}  // namespace imcf
