#include "energy/budget.h"

namespace imcf {
namespace energy {

void BudgetLedger::Charge(SimTime t, double kwh) {
  total_ += kwh;
  const CivilTime ct = ToCivil(t);
  monthly_[ct.year * 100 + ct.month] += kwh;
}

double BudgetLedger::MonthConsumedKwh(SimTime t) const {
  const CivilTime ct = ToCivil(t);
  auto it = monthly_.find(ct.year * 100 + ct.month);
  return it == monthly_.end() ? 0.0 : it->second;
}

double BudgetLedger::CumulativeBudgetKwh(SimTime t) const {
  double cumulative = 0.0;
  const SimTime hour_end =
      (HourIndex(t) + 1) * kSecondsPerHour;
  for (const AmortizationPlan::MonthSlot& slot : plan_->slots()) {
    if (hour_end >= slot.end) {
      cumulative += slot.budget_kwh;
    } else if (hour_end > slot.start) {
      const double frac = static_cast<double>(hour_end - slot.start) /
                          static_cast<double>(slot.end - slot.start);
      cumulative += slot.budget_kwh * frac;
    }
  }
  return cumulative;
}

}  // namespace energy
}  // namespace imcf
