#include "serve/tenant_registry.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/strings.h"
#include "firewall/conflict/dataflow_policy.h"
#include "obs/tracer.h"

namespace imcf {
namespace serve {

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPlan:
      return "plan";
    case RequestKind::kCommand:
      return "command";
    case RequestKind::kQuery:
      return "query";
    case RequestKind::kMrtUpdate:
      return "mrt_update";
  }
  return "?";
}

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kOk:
      return "ok";
    case ServeOutcome::kShed:
      return "shed";
    case ServeOutcome::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServeOutcome::kTenantNotFound:
      return "tenant_not_found";
    case ServeOutcome::kError:
      return "error";
    case ServeOutcome::kConflictRejected:
      return "conflict_rejected";
  }
  return "?";
}

Result<trace::DatasetSpec> SpecForConfig(const TenantConfig& config) {
  if (config.id.empty()) {
    return Status::InvalidArgument("tenant id must not be empty");
  }
  trace::DatasetSpec spec;
  if (config.dataset == "flat") {
    spec = trace::FlatSpec();
  } else if (config.dataset == "house") {
    spec = trace::HouseSpec();
  } else if (config.dataset == "dorms") {
    spec = trace::DormsSpec();
  } else {
    return Status::InvalidArgument("unknown tenant dataset: " +
                                   config.dataset);
  }
  if (!(config.appetite > 0.0) || !std::isfinite(config.appetite)) {
    return Status::InvalidArgument("tenant appetite must be positive");
  }
  spec.name = config.id;
  spec.seed = config.seed;
  if (config.mrt_variation > 0.0) spec.mrt_variation = config.mrt_variation;
  spec.hvac.kw_per_degree *= config.appetite;
  spec.light.max_power_kw *= config.appetite;
  return spec;
}

TenantRegistry::TenantRegistry(int shards, fault::FaultOptions fault,
                               fault::RetryPolicy retry)
    : fault_(fault),
      retry_(retry),
      conflict_analyzer_(shards < 1 ? 1 : shards) {
  if (shards < 1) shards = 1;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

int TenantRegistry::ShardOf(const TenantId& id) const {
  // ChannelHash is the repo's stable string hash (same value on every
  // platform/run), so shard placement is part of the determinism contract.
  return static_cast<int>(fault::ChannelHash(id) %
                          static_cast<uint64_t>(shards_.size()));
}

std::shared_ptr<Tenant> TenantRegistry::Find(const TenantId& id) const {
  const Shard& shard = *shards_[static_cast<size_t>(ShardOf(id))];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.tenants.Find(id);
}

Status TenantRegistry::AdmitPrepared(const TenantId& id,
                                     std::shared_ptr<Tenant> tenant) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(id))];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!shard.tenants.Insert(id, std::move(tenant))) {
    return Status::AlreadyExists("tenant exists: " + id);
  }
  return Status::Ok();
}

Status TenantRegistry::Admit(const TenantConfig& config) {
  IMCF_ASSIGN_OR_RETURN(trace::DatasetSpec spec, SpecForConfig(config));
  return AdmitWithSpec(config, std::move(spec));
}

sim::SimulationOptions TenantRegistry::BuildSimOptions(
    const TenantConfig& config, trace::DatasetSpec spec) const {
  sim::SimulationOptions options;
  options.spec = std::move(spec);
  options.start =
      config.start != 0 ? config.start : trace::EvaluationStart();
  options.hours = config.hours != 0 ? config.hours : 365 * 24;
  options.slot_hours = config.slot_hours;
  options.budget_kwh = config.budget_kwh;  // 0 selects the spec budget
  options.seed = config.seed;
  options.fault = fault_;
  options.retry = retry_;
  options.ifttt_extra = config.extra_recipes;
  return options;
}

firewall::conflict::ConflictReport TenantRegistry::AnalyzeRuleSet(
    const TenantConfig& config, const trace::DatasetSpec& spec,
    const sim::Simulator& simulator) {
  // Lower-bound power draw of executing one rule, from the tenant's device
  // spec: the HVAC's circulation fan runs whenever a setpoint executes,
  // and a light at `value`% draws at least half its dimmed power over the
  // window (duty-cycle floor). Deliberately conservative so a feasible MRT
  // is never rejected.
  firewall::conflict::TenantRuleSet rule_set;
  rule_set.mrt = &simulator.mrt();
  rule_set.ifttt = &simulator.ifttt();
  rule_set.budget_kwh = simulator.total_budget_kwh();
  const int hours = simulator.options().hours != 0 ? simulator.options().hours
                                                   : 365 * 24;
  rule_set.period_days = hours >= 24 ? hours / 24 : 1;
  rule_set.units = spec.units;
  const double fan_kw = spec.hvac.fan_kw;
  const double light_kw = spec.light.max_power_kw;
  rule_set.hourly_energy = [fan_kw, light_kw](const rules::MetaRule& rule,
                                              int /*hour*/) {
    if (rule.action == rules::RuleAction::kSetTemperature) return fan_kw;
    return light_kw * (rule.value / 100.0) * 0.5;
  };
  return conflict_analyzer_.Analyze(ShardOf(config.id), config.id, rule_set);
}

Status TenantRegistry::AdmitWithSpec(const TenantConfig& config,
                                     trace::DatasetSpec spec) {
  if (config.id.empty()) {
    return Status::InvalidArgument("tenant id must not be empty");
  }
  if (Find(config.id) != nullptr) {
    return Status::AlreadyExists("tenant exists: " + config.id);
  }
  auto simulator =
      std::make_unique<sim::Simulator>(BuildSimOptions(config, spec));
  // Prepare outside all locks: it builds the ambient series, the expensive
  // part, and touches no shared state.
  IMCF_RETURN_IF_ERROR(simulator->Prepare());

  // Conflict gate: the rule set must clear all three detectors before the
  // tenant becomes visible. Analysis time is attributed to the tenant's
  // own ledger row (kConflict phase) — a hostile tenant pays for its own
  // rejections — and the span lands on the admission trace.
  firewall::conflict::ConflictReport report;
  {
    IMCF_TRACE_SPAN(span, "conflict.admission", "serve");
    IMCF_COST_SCOPE(cost, cost_ledger_, ShardOf(config.id), config.id);
    // maybe_unused: the disabled-accounting IMCF_COST_ADD_PHASE_NS
    // swallows its arguments without evaluating them.
    [[maybe_unused]] const auto t0 = std::chrono::steady_clock::now();
    report = AnalyzeRuleSet(config, spec, *simulator);
    IMCF_COST_ADD_PHASE_NS(
        obs::CostPhase::kConflict,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    span.Arg("findings", static_cast<int64_t>(report.findings.size()));
    if (!report.ok()) {
      if (cost.local() != nullptr) cost.local()->conflict_rejections += 1;
    }
  }
  if (!report.ok()) {
    return Status::FailedPrecondition("conflict: " + report.Summary());
  }

  auto tenant = std::make_shared<Tenant>(config, std::move(simulator));
  tenant->policy_ = firewall::conflict::DerivePolicy(
      tenant->simulator().mrt(), tenant->simulator().ifttt());
  Status admitted = AdmitPrepared(config.id, std::move(tenant));
  if (!admitted.ok()) {
    // Lost an admission race: drop the edges the analysis installed.
    conflict_analyzer_.Forget(ShardOf(config.id), config.id);
  }
  return admitted;
}

Status TenantRegistry::ApplyMrtUpdate(
    Tenant& tenant, const MrtUpdateRequest& update,
    firewall::conflict::ConflictReport* report) {
  TenantConfig config = tenant.config_;
  if (update.seed != 0) config.seed = update.seed;
  if (update.mrt_variation >= 0.0) config.mrt_variation = update.mrt_variation;
  if (update.budget_kwh >= 0.0) config.budget_kwh = update.budget_kwh;
  if (update.set_recipes) config.extra_recipes = update.extra_recipes;

  IMCF_ASSIGN_OR_RETURN(trace::DatasetSpec spec, SpecForConfig(config));
  auto simulator =
      std::make_unique<sim::Simulator>(BuildSimOptions(config, spec));
  IMCF_RETURN_IF_ERROR(simulator->Prepare());

  IMCF_TRACE_SPAN(span, "conflict.update", "serve");
  [[maybe_unused]] const auto t0 = std::chrono::steady_clock::now();
  firewall::conflict::ConflictReport local = AnalyzeRuleSet(config, spec,
                                                            *simulator);
  IMCF_COST_ADD_PHASE_NS(
      obs::CostPhase::kConflict,
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  span.Arg("findings", static_cast<int64_t>(local.findings.size()));
  if (report != nullptr) *report = local;
  if (!local.ok()) {
    // The analyzer restored the previously-admitted edges; the tenant
    // keeps its current rule set.
    return Status::FailedPrecondition("conflict: " + local.Summary());
  }

  tenant.config_ = std::move(config);
  tenant.simulator_ = std::move(simulator);
  tenant.policy_ = firewall::conflict::DerivePolicy(
      tenant.simulator_->mrt(), tenant.simulator_->ifttt());
  return Status::Ok();
}

Status TenantRegistry::RestoreStats(const TenantId& id,
                                    const TenantStats& stats) {
  return WithTenant(id, [&stats](Tenant& tenant) {
    tenant.stats() = stats;
    return Status::Ok();
  });
}

Status TenantRegistry::Remove(const TenantId& id) {
  {
    Shard& shard = *shards_[static_cast<size_t>(ShardOf(id))];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.tenants.Erase(id)) {
      return Status::NotFound("no such tenant: " + id);
    }
  }
  // Evicted tenants stop contributing command edges (and /conflictz rows).
  conflict_analyzer_.Forget(ShardOf(id), id);
  return Status::Ok();
}

bool TenantRegistry::Contains(const TenantId& id) const {
  return Find(id) != nullptr;
}

size_t TenantRegistry::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->tenants.size();
  }
  return n;
}

std::vector<TenantId> TenantRegistry::TenantIds() const {
  std::vector<TenantId> ids;
  ids.reserve(size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->tenants.ForEach(
        [&ids](const TenantId& id, const std::shared_ptr<Tenant>&) {
          ids.push_back(id);
        });
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status TenantRegistry::WithTenant(const TenantId& id,
                                  const std::function<Status(Tenant&)>& fn) {
  std::shared_ptr<Tenant> tenant = Find(id);
  if (tenant == nullptr) return Status::NotFound("no such tenant: " + id);
  // The span covers the tenant-mutex wait plus `fn`; contention on a hot
  // tenant shows up as serve.execute time spent here before any sim span.
  IMCF_TRACE_SPAN(span, "tenant.with", "serve");
  // Cost scope BEFORE the tenant mutex: lower layers (sim, planner,
  // evaluators) accumulate into its thread-local sink while `fn` runs, and
  // the single ledger flush happens after the mutex is released.
  IMCF_COST_SCOPE(cost, cost_ledger_, ShardOf(id), id);
  std::lock_guard<std::mutex> lock(tenant->mu_);
  return fn(*tenant);
}

Result<TenantConfig> TenantRegistry::GetConfig(const TenantId& id) const {
  std::shared_ptr<Tenant> tenant = Find(id);
  if (tenant == nullptr) return Status::NotFound("no such tenant: " + id);
  // MRT updates mutate the config in place, so reads take the tenant lock.
  std::lock_guard<std::mutex> lock(tenant->mu_);
  return tenant->config();
}

Result<TenantStats> TenantRegistry::GetStats(const TenantId& id) const {
  std::shared_ptr<Tenant> tenant = Find(id);
  if (tenant == nullptr) return Status::NotFound("no such tenant: " + id);
  std::lock_guard<std::mutex> lock(tenant->mu_);
  return tenant->stats();
}

TableSchema TenantSnapshotSchema() {
  return TableSchema{"tenants",
                     {{"id", ColumnType::kString},
                      {"dataset", ColumnType::kString},
                      {"seed", ColumnType::kInt},
                      {"budget_kwh", ColumnType::kDouble},
                      {"start", ColumnType::kInt},
                      {"hours", ColumnType::kInt},
                      {"slot_hours", ColumnType::kInt},
                      {"mrt_variation", ColumnType::kDouble},
                      {"appetite", ColumnType::kDouble},
                      {"plans_served", ColumnType::kInt},
                      {"commands_served", ColumnType::kInt},
                      {"queries_served", ColumnType::kInt},
                      {"deadline_expired", ColumnType::kInt},
                      {"fe_kwh_total", ColumnType::kDouble}}};
}

Status TenantRegistry::Save(TableStore* store) const {
  if (store == nullptr) {
    return Status::InvalidArgument("snapshot store is null");
  }
  IMCF_ASSIGN_OR_RETURN(Table * table,
                        store->OpenOrCreateTable(TenantSnapshotSchema()));
  // Truncate-and-rewrite keeps the table equal to the live fleet; the
  // marker-based truncate plus auto-compaction keeps the backing log
  // bounded under frequent checkpoints (storage/table_store.h).
  IMCF_RETURN_IF_ERROR(table->Truncate());
  for (const TenantId& id : TenantIds()) {
    std::shared_ptr<Tenant> tenant = Find(id);
    if (tenant == nullptr) continue;  // removed since listing
    TenantConfig config;
    TenantStats stats;
    {
      std::lock_guard<std::mutex> lock(tenant->mu_);
      config = tenant->config();
      stats = tenant->stats();
    }
    IMCF_RETURN_IF_ERROR(table->Insert(
        {config.id, config.dataset, static_cast<int64_t>(config.seed),
         config.budget_kwh, static_cast<int64_t>(config.start),
         static_cast<int64_t>(config.hours),
         static_cast<int64_t>(config.slot_hours), config.mrt_variation,
         config.appetite, stats.plans_served, stats.commands_served,
         stats.queries_served, stats.deadline_expired, stats.fe_kwh_total}));
  }
  return table->Flush();
}

Result<int> TenantRegistry::Load(TableStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("snapshot store is null");
  }
  IMCF_ASSIGN_OR_RETURN(Table * table,
                        store->OpenOrCreateTable(TenantSnapshotSchema()));
  int recovered = 0;
  for (const Row& row : table->rows()) {
    TenantConfig config;
    config.id = std::get<std::string>(row[0]);
    config.dataset = std::get<std::string>(row[1]);
    config.seed = static_cast<uint64_t>(std::get<int64_t>(row[2]));
    config.budget_kwh = std::get<double>(row[3]);
    config.start = std::get<int64_t>(row[4]);
    config.hours = static_cast<int>(std::get<int64_t>(row[5]));
    config.slot_hours = static_cast<int>(std::get<int64_t>(row[6]));
    config.mrt_variation = std::get<double>(row[7]);
    config.appetite = std::get<double>(row[8]);
    TenantStats stats;
    stats.plans_served = std::get<int64_t>(row[9]);
    stats.commands_served = std::get<int64_t>(row[10]);
    stats.queries_served = std::get<int64_t>(row[11]);
    stats.deadline_expired = std::get<int64_t>(row[12]);
    stats.fe_kwh_total = std::get<double>(row[13]);
    IMCF_RETURN_IF_ERROR(Admit(config));
    IMCF_RETURN_IF_ERROR(RestoreStats(config.id, stats));
    ++recovered;
  }
  return recovered;
}

}  // namespace serve
}  // namespace imcf
