// Sharded registry of fleet tenants (households) and their planning state.
//
// The ROADMAP's north star is one service fronting very many households;
// a single map under a single mutex would serialize every tenant touch, so
// the registry stripes tenants across N shards, each with its own mutex
// guarding only membership. Tenant *work* (planning, command delivery)
// synchronizes on a per-tenant mutex instead, so two tenants on the same
// shard plan concurrently and a long plan never blocks admission.
//
// A tenant bundles everything the single-home stack hangs off one
// household: the prepared Simulator (which owns the MRT, device registry,
// budget ledger, amortization plan and firewall for its runs), the
// TenantConfig that can rebuild it, and serving counters. Per-tenant
// snapshot persistence goes through the TableStore: Save() rewrites the
// `tenants` table, Load() re-admits every row, so a restarted service
// recovers its fleet (see DESIGN.md §10).

#ifndef IMCF_SERVE_TENANT_REGISTRY_H_
#define IMCF_SERVE_TENANT_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "fault/fault_plan.h"
#include "fault/retry.h"
#include "firewall/conflict/analyzer.h"
#include "obs/accounting/cost_ledger.h"
#include "serve/request.h"
#include "serve/tenant_table.h"
#include "sim/simulation.h"
#include "storage/table_store.h"

namespace imcf {
namespace serve {

/// Everything needed to (re)build one tenant's planning state. The config
/// is what the snapshot table persists, so it is deliberately flat: a base
/// dataset name plus the knobs the fleet entry points actually vary.
struct TenantConfig {
  TenantId id;
  std::string dataset = "flat";  ///< "flat" | "house" | "dorms"
  uint64_t seed = 1;             ///< MRT variation + planner streams
  double budget_kwh = 0.0;       ///< 0: the dataset's Table II budget
  SimTime start = 0;             ///< 0: the paper's evaluation start
  int hours = 0;                 ///< planning window (0: one year)
  int slot_hours = 1;            ///< Algorithm 1 granularity
  double mrt_variation = 0.0;    ///< 0: the dataset's default
  /// Device sizing multiplier (the DefaultNeighborhood "appetite"):
  /// scales HVAC kW/°C and light max power.
  double appetite = 1.0;
  /// Tenant-submitted IFTTT recipes appended after the stock Table III
  /// rows. Vetted by the conflict pass at admission and on every MRT
  /// update; NOT persisted in the snapshot table (a restarted fleet
  /// re-admits the stock rule set and tenants resubmit).
  std::vector<rules::TriggerRule> extra_recipes;
};

/// Serving counters, persisted with the config so a restarted service
/// resumes its bookkeeping where it left off.
struct TenantStats {
  int64_t plans_served = 0;
  int64_t commands_served = 0;
  int64_t queries_served = 0;
  int64_t deadline_expired = 0;
  double fe_kwh_total = 0.0;  ///< summed F_E over served plans

  friend bool operator==(const TenantStats&, const TenantStats&) = default;
};

/// Builds the DatasetSpec a config describes (base dataset + overrides).
Result<trace::DatasetSpec> SpecForConfig(const TenantConfig& config);

/// One registered household. Accessed only through
/// TenantRegistry::WithTenant, which holds the tenant's mutex.
class Tenant {
 public:
  Tenant(TenantConfig config, std::unique_ptr<sim::Simulator> simulator)
      : config_(std::move(config)), simulator_(std::move(simulator)) {}

  const TenantConfig& config() const { return config_; }
  sim::Simulator& simulator() { return *simulator_; }
  const sim::Simulator& simulator() const { return *simulator_; }
  TenantStats& stats() { return stats_; }
  const TenantStats& stats() const { return stats_; }

  /// The dataflow policy derived from the active rule set (PFirewall-style
  /// field redaction for context queries). Maintained by the registry on
  /// admission and on accepted MRT updates.
  const firewall::conflict::DataflowPolicy& dataflow_policy() const {
    return policy_;
  }

 private:
  friend class TenantRegistry;

  TenantConfig config_;
  std::unique_ptr<sim::Simulator> simulator_;
  TenantStats stats_;
  firewall::conflict::DataflowPolicy policy_;
  std::mutex mu_;  ///< serializes work on this tenant
};

/// Mutex-striped tenant directory.
class TenantRegistry {
 public:
  /// `shards` must be >= 1. Fault/retry options propagate into every
  /// admitted tenant's simulator (the fleet-wide fault schedule).
  explicit TenantRegistry(int shards = 8, fault::FaultOptions fault = {},
                          fault::RetryPolicy retry = {});

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Builds and prepares the tenant `config` describes; error if the id is
  /// taken or the config invalid. Preparing (building the ambient series)
  /// is the expensive step and runs outside all locks.
  Status Admit(const TenantConfig& config);

  /// Admits a tenant from an explicit spec (the CloudMetaController path,
  /// whose households carry hand-tuned specs). `config` is recorded for
  /// snapshots; `spec` wins for simulator construction.
  Status AdmitWithSpec(const TenantConfig& config, trace::DatasetSpec spec);

  /// Restores previously saved counters; tenant must exist.
  Status RestoreStats(const TenantId& id, const TenantStats& stats);

  Status Remove(const TenantId& id);

  bool Contains(const TenantId& id) const;
  size_t size() const;

  /// All tenant ids, sorted (the canonical fleet iteration order).
  std::vector<TenantId> TenantIds() const;

  /// Shard index of a tenant id (stable hash; exposed for queue striping).
  int ShardOf(const TenantId& id) const;
  int shards() const { return static_cast<int>(shards_.size()); }

  /// Runs `fn` with the tenant's mutex held. The shard lock is NOT held
  /// during `fn`, so long work on one tenant never blocks its shard.
  /// When a cost ledger is attached, `fn` runs inside a ScopedCost charging
  /// (ShardOf(id), id) — the chokepoint that attributes everything below
  /// (sim run, planner, evaluators, arena) to the tenant, for every caller
  /// at once: the fleet drain and the cloud controller alike.
  Status WithTenant(const TenantId& id,
                    const std::function<Status(Tenant&)>& fn);

  /// Attaches the ledger WithTenant charges into (null detaches). Set once
  /// at service construction, before concurrent drains start.
  void set_cost_ledger(obs::CostLedger* ledger) { cost_ledger_ = ledger; }
  obs::CostLedger* cost_ledger() const { return cost_ledger_; }

  Result<TenantConfig> GetConfig(const TenantId& id) const;
  Result<TenantStats> GetStats(const TenantId& id) const;

  /// Rebuilds `tenant`'s rule set with the update's overrides, runs the
  /// conflict pass on the result and — only if it admits — swaps the new
  /// simulator in and refreshes the dataflow policy. On rejection the
  /// tenant keeps its current rule set, the verdict lands in `report`, and
  /// the returned status is FailedPrecondition. Caller must hold the
  /// tenant's mutex (i.e. call from inside WithTenant).
  Status ApplyMrtUpdate(Tenant& tenant, const MrtUpdateRequest& update,
                        firewall::conflict::ConflictReport* report);

  /// The admission-time conflict pass (also serves /conflictz).
  firewall::conflict::ConflictAnalyzer& conflict_analyzer() {
    return conflict_analyzer_;
  }
  const firewall::conflict::ConflictAnalyzer& conflict_analyzer() const {
    return conflict_analyzer_;
  }

  /// Rewrites the `tenants` snapshot table from the current fleet (config
  /// + stats per tenant, sorted by id).
  Status Save(TableStore* store) const;

  /// Re-admits every tenant recorded in the `tenants` table and restores
  /// its counters. Returns the number of tenants recovered.
  Result<int> Load(TableStore* store);

  const fault::FaultOptions& fault_options() const { return fault_; }
  const fault::RetryPolicy& retry_policy() const { return retry_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Open-addressing directory (see tenant_table.h): flat-array probing
    /// sized for fleets far beyond what a node-based map serves well.
    TenantTable tenants;
  };

  /// Looks up a tenant under its shard lock only.
  std::shared_ptr<Tenant> Find(const TenantId& id) const;

  Status AdmitPrepared(const TenantId& id, std::shared_ptr<Tenant> tenant);

  /// Builds the SimulationOptions a (config, spec) pair describes — shared
  /// by admission and the MRT-update rebuild so both paths stay identical.
  sim::SimulationOptions BuildSimOptions(const TenantConfig& config,
                                         trace::DatasetSpec spec) const;

  /// Runs the conflict pass over a prepared simulator's rule set.
  firewall::conflict::ConflictReport AnalyzeRuleSet(
      const TenantConfig& config, const trace::DatasetSpec& spec,
      const sim::Simulator& simulator);

  std::vector<std::unique_ptr<Shard>> shards_;
  fault::FaultOptions fault_;
  fault::RetryPolicy retry_;
  obs::CostLedger* cost_ledger_ = nullptr;  ///< borrowed; may be null
  firewall::conflict::ConflictAnalyzer conflict_analyzer_;
};

/// Schema of the snapshot table ("tenants").
TableSchema TenantSnapshotSchema();

}  // namespace serve
}  // namespace imcf

#endif  // IMCF_SERVE_TENANT_REGISTRY_H_
