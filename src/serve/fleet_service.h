// FleetService: the multi-tenant planning service front door.
//
// One in-process service owns a fleet of households (a TenantRegistry) and
// executes plan / command / query work for them concurrently — the
// "IMCF-Cloud" controller of the paper's §V future work, run as a service
// rather than a batch job. The serving pipeline is:
//
//   Submit(request)          — admission control: the request lands in its
//                              tenant's shard queue; a full queue sheds the
//                              request immediately with a retry-after hint
//                              (load-shedding, never unbounded buffering).
//   Drain(now)               — scheduling: queued requests are
//                              deadline-checked against the drain's virtual
//                              `now`, ordered deadline-first within each
//                              tenant, interleaved round-robin across
//                              tenants (one hot tenant cannot starve the
//                              rest) and fanned out on the worker pool.
//                              Responses come back sorted by request id.
//
// Determinism: with a single submitting thread, the full response stream —
// shed decisions, deadline expiries and every per-tenant plan outcome — is
// a pure function of (service options, tenant configs, request stream,
// drain times), bit-identical for every worker count. See DESIGN.md §10.
//
// Persistence: with `store_dir` set, Create() recovers the fleet from the
// TableStore snapshot and Checkpoint()/Stop() rewrite it, so a restarted
// service resumes with the same tenants and counters.

#ifndef IMCF_SERVE_FLEET_SERVICE_H_
#define IMCF_SERVE_FLEET_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/plan_arena.h"
#include "fault/fault_plan.h"
#include "fault/retry.h"
#include "obs/accounting/cost_ledger.h"
#include "obs/metrics.h"
#include "obs/slo/slo_engine.h"
#include "obs/status_server/status_server.h"
#include "serve/request.h"
#include "serve/tenant_registry.h"
#include "storage/table_store.h"

namespace imcf {
namespace serve {

/// Service configuration.
struct FleetOptions {
  /// Tenant-registry shards (mutex stripes); also the queue stripes.
  int shards = 8;
  /// Worker threads draining the queues. 1 is the serial reference path
  /// (no pool is constructed); 0 selects the hardware concurrency.
  int workers = 1;
  /// Bounded queue capacity per shard; a submit beyond it is shed.
  int queue_capacity = 64;
  /// Base retry-after hint attached to shed responses, in (virtual)
  /// seconds. When the shedding shard has an observed drain rate, the hint
  /// scales to the estimated time the current backlog needs to drain,
  /// clamped to [base/4, base*8] (sim-time arithmetic only, so the hint is
  /// part of the determinism contract). Without history the base applies.
  SimTime shed_retry_after_seconds = 60;
  /// Batched planning: Drain groups up to this many consecutive dispatch
  /// entries into one execution unit that shares a PlanArena, so a pass
  /// over many tenants recycles one warm allocation instead of building
  /// evaluator tables from cold heap per plan. Grouping only changes where
  /// evaluator memory comes from — each request still executes
  /// independently, so responses are bit-identical for any batch size or
  /// worker count (DESIGN.md §12). Values below 1 behave as 1.
  int plan_batch = 8;
  /// Snapshot directory; empty disables persistence.
  std::string store_dir;
  /// Fault injection for tenant command delivery and weather links; the
  /// plan's channels gate every tenant command the service delivers.
  fault::FaultOptions fault;
  fault::RetryPolicy retry;
  /// Publish per-tenant counters labelled {tenant="<id>"}. Off by default:
  /// the obs cardinality rules reserve labels for small closed sets, so
  /// only fleets of bounded size should enable this.
  bool per_tenant_metrics = false;
  /// Slow-request log threshold: an executed request whose wall latency
  /// meets or exceeds this logs one structured line with its collapsed
  /// span tree (including firewall verdict events). 0 disables.
  int64_t slow_request_wall_ns = 0;
  /// Directory for automatic flight-recorder dumps. When a single drain
  /// observes at least `spike_dump_threshold` shed + deadline-exceeded
  /// responses, the recorder is dumped to
  /// `<trace_dump_dir>/trace_spike_<n>.json`. Empty disables.
  std::string trace_dump_dir;
  int spike_dump_threshold = 0;
  /// Default per-tenant service objectives (plan latency, shed rate,
  /// deadline hit rate) and burn-rate window geometry. A tenant whose SLO
  /// starts burning at the configured multi-window threshold triggers the
  /// same auto-dump machinery as a shed spike
  /// (`<trace_dump_dir>/trace_slo_<n>.json`).
  obs::SloOptions slo;
  /// Live introspection port: -1 disables the status server, 0 binds an
  /// ephemeral port (tests read it back via status_server()->port()).
  /// Serves /metrics /statusz /tenantz /sloz /tracez.
  int status_port = -1;
};

/// The service.
class FleetService {
 public:
  /// Builds a service; with `store_dir` set, recovers any snapshotted
  /// fleet from it.
  static Result<std::unique_ptr<FleetService>> Create(FleetOptions options);

  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Admits a tenant (prepares its simulator — the expensive step).
  Status AddTenant(const TenantConfig& config);

  /// Submits one request. Returns nullopt when the request was queued (its
  /// response arrives from the next Drain), or the immediate response when
  /// admission rejected it (kShed / kTenantNotFound).
  std::optional<Response> Submit(Request request);

  /// The deterministic trace id minted for a request id: every span and
  /// event of one request shares it. Exposed so network front ends can
  /// root their transport spans (net.send) in the request's own tree.
  static uint64_t TraceIdFor(uint64_t request_id);

  /// Submit variant that also reports the request id assigned at admission
  /// (the id the eventual Drain response carries). Network front ends use
  /// it to correlate queued requests back to their connections.
  std::optional<Response> Submit(Request request, uint64_t* assigned_id);

  /// Executes every queued request at virtual time `now` and returns their
  /// responses sorted by request id. Requests whose deadline lies before
  /// `now` complete as kDeadlineExceeded without executing.
  std::vector<Response> Drain(SimTime now);

  /// Submit + immediate single-request drain, for callers that want RPC
  /// semantics rather than open-loop batching.
  Response Call(Request request, SimTime now);

  /// Rewrites the fleet snapshot (no-op without a store).
  Status Checkpoint();

  /// Drains outstanding work at `now`, then checkpoints.
  Status Stop(SimTime now);

  /// Requests currently queued across all shards.
  size_t queued() const;

  /// Current queue depth per shard (the /statusz skew view).
  std::vector<size_t> queue_depths() const;

  /// Dumps the process flight recorder as Perfetto JSON to `path` (the
  /// on-demand trace sink). Returns false when the file cannot be written.
  bool DumpTrace(const std::string& path) const;

  TenantRegistry& registry() { return *registry_; }
  const TenantRegistry& registry() const { return *registry_; }
  const FleetOptions& options() const { return options_; }

  /// Per-tenant cost attribution (who is spending what, by phase). Always
  /// present; stays empty when built with IMCF_DISABLE_ACCOUNTING.
  obs::CostLedger& cost_ledger() { return *cost_ledger_; }
  const obs::CostLedger& cost_ledger() const { return *cost_ledger_; }

  /// Per-tenant SLO burn-rate state (fed once per response at drain time).
  obs::SloEngine& slo_engine() { return *slo_; }
  const obs::SloEngine& slo_engine() const { return *slo_; }

  /// The status server, or null when options().status_port == -1.
  obs::StatusServer* status_server() { return status_server_.get(); }

  /// Virtual time of the most recent Drain (the /sloz evaluation point).
  SimTime last_drain_time() const {
    return last_drain_now_.load(std::memory_order_relaxed);
  }

 private:
  struct QueuedItem {
    uint64_t id = 0;
    int shard = 0;           ///< queue stripe the item waited on
    int64_t enqueue_ns = 0;  ///< wall clock at admission (queue-wait metric)
    Request request;
  };

  struct QueueShard {
    mutable std::mutex mu;
    std::deque<QueuedItem> items;
    /// Observed drain rate (guarded by mu, maintained by Drain): the last
    /// drain's virtual time, and how many items the previous non-empty
    /// drain moved over what sim-time gap. Submit's shed path scales its
    /// retry-after hint by items/gap — all sim-clock integers, so shed
    /// hints replay bit-identically at any worker count.
    SimTime last_drain_now = 0;
    SimTime drain_gap = 0;
    int64_t drain_items = 0;
  };

  explicit FleetService(FleetOptions options);

  /// Executes one admitted item at virtual time `now` (deadline check,
  /// tenant lookup, work dispatch). Pure function of (item, now, tenant
  /// state) — the unit of the determinism contract. `arena` backs plan
  /// evaluator tables; it belongs to the calling execution unit and is
  /// never shared across threads.
  Response Execute(const QueuedItem& item, SimTime now,
                   core::PlanArena* arena);

  /// The per-kind work, run with the tenant's mutex held.
  Status ExecutePlan(Tenant& tenant, const Request& request,
                     core::PlanArena* arena, Response* response);
  Status ExecuteCommand(Tenant& tenant, const Request& request,
                        Response* response);
  Status ExecuteQuery(Tenant& tenant, const Request& request,
                      Response* response);
  Status ExecuteMrtUpdate(Tenant& tenant, const Request& request,
                          Response* response);

  void CountResponse(const Response& response);
  void UpdateQueueDepthGauge();

  /// Spike detector: dumps the flight recorder when one drain saw at least
  /// `spike_dump_threshold` shed + deadline-exceeded outcomes.
  void MaybeDumpSpike(const std::vector<Response>& responses);
  /// Emits one structured line per response over the slow-request
  /// threshold, with its collapsed span tree.
  void LogSlowRequests(const std::vector<Response>& responses);

  /// Feeds one drain's responses into the SLO windows and auto-dumps the
  /// flight recorder on a rising burn edge
  /// (`<trace_dump_dir>/trace_slo_<n>.json`).
  void FeedSlo(const std::vector<Response>& responses, SimTime now);

  FleetOptions options_;
  std::unique_ptr<TenantRegistry> registry_;
  std::unique_ptr<TableStore> store_;      // null without persistence
  std::unique_ptr<ThreadPool> pool_;       // null when workers == 1
  fault::FaultPlan fault_plan_;
  std::unique_ptr<obs::CostLedger> cost_ledger_;  // always non-null
  std::unique_ptr<obs::SloEngine> slo_;           // always non-null
  std::vector<std::unique_ptr<QueueShard>> queues_;
  /// Per-shard instrumentation (satellite of the aggregate gauges in
  /// ServeMetrics): hot-shard skew is visible instead of averaged away.
  std::vector<obs::Gauge*> shard_depth_;
  std::vector<obs::Histogram*> shard_wait_ns_;
  std::atomic<uint64_t> next_id_{1};
  /// Sheds since the last spike check (drained by Drain's spike detector).
  std::atomic<int64_t> sheds_since_check_{0};
  std::atomic<int> spike_dumps_{0};
  std::atomic<int> slo_dumps_{0};
  std::atomic<SimTime> last_drain_now_{0};
  /// Declared last so its serving thread stops before any state the
  /// introspection handlers read is torn down.
  std::unique_ptr<obs::StatusServer> status_server_;  // null when disabled
};

}  // namespace serve
}  // namespace imcf

#endif  // IMCF_SERVE_FLEET_SERVICE_H_
