#include "serve/tenant_table.h"

#include <utility>

#include "fault/fault_plan.h"

namespace imcf {
namespace serve {

namespace {
/// Initial capacity on first insert. Power of two, like every capacity.
constexpr size_t kInitialSlots = 16;
}  // namespace

size_t TenantTable::FindSlot(const TenantId& id) const {
  if (slots_.empty()) return SIZE_MAX;
  const uint64_t hash = fault::ChannelHash(id);
  size_t index = static_cast<size_t>(hash) & mask_;
  size_t distance = 0;
  while (true) {
    const Slot& slot = slots_[index];
    if (!slot.used) return SIZE_MAX;
    // Robin-hood invariant: entries along a probe chain are ordered by
    // their own displacement. Once we have probed further than the
    // resident entry is displaced, the key cannot be further along.
    if (DistanceFromHome(slot.hash, index) < distance) return SIZE_MAX;
    if (slot.hash == hash && slot.key == id) return index;
    index = (index + 1) & mask_;
    ++distance;
  }
}

std::shared_ptr<Tenant> TenantTable::Find(const TenantId& id) const {
  const size_t index = FindSlot(id);
  return index == SIZE_MAX ? nullptr : slots_[index].value;
}

bool TenantTable::Contains(const TenantId& id) const {
  return FindSlot(id) != SIZE_MAX;
}

bool TenantTable::Insert(const TenantId& id, std::shared_ptr<Tenant> value) {
  if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) Grow();
  if (FindSlot(id) != SIZE_MAX) return false;

  Slot incoming;
  incoming.hash = fault::ChannelHash(id);
  incoming.used = true;
  incoming.key = id;
  incoming.value = std::move(value);

  size_t index = static_cast<size_t>(incoming.hash) & mask_;
  size_t distance = 0;
  while (true) {
    Slot& slot = slots_[index];
    if (!slot.used) {
      slots_[index] = std::move(incoming);
      ++size_;
      return true;
    }
    // Steal from the rich: displace a resident entry that is closer to
    // its home than the incoming one is to its own, and carry the
    // displaced entry forward.
    const size_t resident = DistanceFromHome(slot.hash, index);
    if (resident < distance) {
      std::swap(slot, incoming);
      distance = resident;
    }
    index = (index + 1) & mask_;
    ++distance;
  }
}

bool TenantTable::Erase(const TenantId& id) {
  size_t index = FindSlot(id);
  if (index == SIZE_MAX) return false;
  // Backward-shift deletion: slide successors with non-zero displacement
  // one slot back, keeping every probe chain contiguous (no tombstones).
  while (true) {
    const size_t next = (index + 1) & mask_;
    Slot& next_slot = slots_[next];
    if (!next_slot.used || DistanceFromHome(next_slot.hash, next) == 0) {
      slots_[index] = Slot{};
      break;
    }
    slots_[index] = std::move(next_slot);
    index = next;
  }
  --size_;
  return true;
}

void TenantTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  const size_t new_capacity =
      old.empty() ? kInitialSlots : old.size() * 2;
  slots_.assign(new_capacity, Slot{});
  mask_ = new_capacity - 1;
  size_ = 0;
  for (Slot& slot : old) {
    if (!slot.used) continue;
    // Reinsert along the robin-hood probe; keys are unique by
    // construction, so skip the duplicate check.
    Slot incoming = std::move(slot);
    size_t index = static_cast<size_t>(incoming.hash) & mask_;
    size_t distance = 0;
    while (true) {
      Slot& target = slots_[index];
      if (!target.used) {
        slots_[index] = std::move(incoming);
        ++size_;
        break;
      }
      const size_t resident = DistanceFromHome(target.hash, index);
      if (resident < distance) {
        std::swap(target, incoming);
        distance = resident;
      }
      index = (index + 1) & mask_;
      ++distance;
    }
  }
}

}  // namespace serve
}  // namespace imcf
