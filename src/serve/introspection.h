// Serve-level introspection pages for the status server.
//
// The obs-level defaults (/metrics, /tracez) know nothing about the fleet;
// this module adds the pages that do:
//
//   /statusz            — service vitals: options, tenants, queue depths
//                         per shard, requests served by the status server.
//   /tenantz?sort=cpu   — the cost ledger's top-K view (sort = cpu | bytes
//                         | plans | sheds, k = row cap, 0/absent = all).
//                         Unknown sort values and malformed k get a 400,
//                         not a silently defaulted page.
//   /sloz               — per-tenant SLO burn state, evaluated at the most
//                         recent drain's virtual time.
//   /conflictz          — per-tenant conflict-firewall verdicts: last
//                         analysis outcome, findings by class, dataflow
//                         policy fields.
//
// Handlers run on the status server's serving thread while drains run
// elsewhere, so they only touch thread-safe surfaces (ledger snapshots,
// SLO evaluation, queue-depth reads) — never bare service internals.

#ifndef IMCF_SERVE_INTROSPECTION_H_
#define IMCF_SERVE_INTROSPECTION_H_

namespace imcf {
namespace obs {
class StatusServer;
}  // namespace obs

namespace serve {

class FleetService;

/// Registers /statusz, /tenantz, /sloz and /conflictz on `server`, backed
/// by `service`.
/// The service must outlive the server (FleetService guarantees this by
/// declaring its server last).
void RegisterIntrospectionHandlers(obs::StatusServer* server,
                                   FleetService* service);

}  // namespace serve
}  // namespace imcf

#endif  // IMCF_SERVE_INTROSPECTION_H_
