// Typed request/response vocabulary of the fleet serving layer.
//
// The paper's §V names "IMCF-Cloud extensions that will enable IMCF to
// operate as a CMC controller in the cloud"; a cloud controller is a
// *service*, so its work arrives as requests. Three request kinds cover the
// IMCF surface: plan (run a policy over the tenant's window), command
// (deliver one actuation through the tenant's fault-gated bus) and query
// (read tenant status). Every request carries an issue time and an optional
// deadline on the simulation clock; responses report the outcome, the plan
// metrics where applicable, and both virtual and wall latency.
//
// Deadlines use the sim clock deliberately: expiry is decided against the
// drain's virtual `now`, never against wall time, so the same request
// stream produces bit-identical outcomes at any worker count (the fleet
// extension of the DESIGN.md §7 determinism contract).

#ifndef IMCF_SERVE_REQUEST_H_
#define IMCF_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "devices/device.h"
#include "obs/tracer.h"
#include "rules/trigger_rule.h"
#include "sim/simulation.h"

namespace imcf {
namespace serve {

/// Tenants are addressed by opaque string ids (a household name).
using TenantId = std::string;

/// What a request asks the fleet to do.
enum class RequestKind : uint8_t {
  kPlan = 0,
  kCommand = 1,
  kQuery = 2,
  kMrtUpdate = 3,  ///< swap the tenant's rule set (conflict-gated)
};

/// Number of RequestKind values (for per-kind tallies).
inline constexpr size_t kNumRequestKinds = 4;

const char* RequestKindName(RequestKind kind);

/// How the service disposed of a request.
enum class ServeOutcome : uint8_t {
  kOk = 0,                ///< executed successfully
  kShed = 1,              ///< admission control rejected (queue full)
  kDeadlineExceeded = 2,  ///< expired before a worker reached it
  kTenantNotFound = 3,    ///< unknown tenant id
  kError = 4,             ///< execution failed (see Response::status)
  kConflictRejected = 5,  ///< the conflict pass vetoed the rule set
};

/// Number of ServeOutcome values (for per-outcome tallies).
inline constexpr size_t kNumServeOutcomes = 6;

const char* ServeOutcomeName(ServeOutcome outcome);

/// Plan work: run one policy over the tenant's configured window. `rep`
/// seeds the per-run random streams exactly as in Simulator::Run, so a
/// (tenant, policy, rep) triple names a reproducible unit of work.
struct PlanRequest {
  sim::Policy policy = sim::Policy::kEnergyPlanner;
  int rep = 0;
};

/// Command work: one actuation addressed by (unit, command type), delivered
/// through the tenant's command bus where the FaultPlan gates the last hop.
struct CommandRequest {
  int unit = 0;
  devices::CommandType type = devices::CommandType::kSetTemperature;
  double value = 0.0;
  SimTime time = 0;  ///< virtual delivery time (0: the request issue time)
};

/// Query work: read-only tenant state.
enum class QueryKind : uint8_t {
  kStatus = 0,
  kContext = 1,  ///< one unit's environment snapshot, dataflow-filtered
};

struct QueryRequest {
  QueryKind kind = QueryKind::kStatus;
  int unit = 0;  ///< kContext: which unit's snapshot
};

/// MRT-update work: re-derive the tenant's rule set with the overridden
/// knobs and swap it in — but only if the conflict pass admits the result.
/// Sentinel values mean "keep the tenant's current setting".
struct MrtUpdateRequest {
  uint64_t seed = 0;          ///< 0: keep current seed
  double mrt_variation = -1;  ///< < 0: keep current variation
  double budget_kwh = -1;     ///< < 0: keep; 0: dataset default
  /// When set_recipes is true, extra_recipes replaces the tenant's extra
  /// IFTTT rows (appended after the stock Table III recipes).
  bool set_recipes = false;
  std::vector<rules::TriggerRule> extra_recipes;
};

/// One unit of fleet work. Exactly the member named by `kind` is consulted.
struct Request {
  TenantId tenant;
  RequestKind kind = RequestKind::kPlan;
  SimTime issue_time = 0;  ///< sim clock at submission
  /// Absolute sim-clock deadline; 0 means none. A request whose deadline
  /// lies before the drain's `now` completes as kDeadlineExceeded without
  /// executing.
  SimTime deadline = 0;
  /// Trace context minted at submission (the submit span), carried across
  /// the enqueue -> drain thread handoff so the executing worker's spans
  /// join the request's trace. Set by FleetService::Submit.
  obs::TraceContext trace;
  PlanRequest plan;
  CommandRequest command;
  QueryRequest query;
  MrtUpdateRequest mrt_update;
};

/// Plan metrics carried back on a successful plan response (the paper's
/// F_CE / F_E plus the firewall's command accounting).
struct PlanOutcome {
  double fce_pct = 0.0;
  double fe_kwh = 0.0;
  bool within_budget = false;
  int64_t commands_issued = 0;
  int64_t commands_dropped = 0;
};

/// Tenant status carried back on a query response.
struct TenantStatus {
  int64_t plans_served = 0;
  int64_t commands_served = 0;
  double budget_kwh = 0.0;
  int devices = 0;
  int units = 0;
};

/// One unit's environment snapshot, redacted to the tenant's dataflow
/// policy (kQuery/kContext responses). `fields` echoes which bits survived
/// the filter (firewall::conflict::ContextField values).
struct ContextView {
  uint32_t fields = 0;
  SimTime time = 0;
  int season = 0;  ///< weather::Season ordinal
  int sky = 0;     ///< weather::Sky ordinal
  double outdoor_temp_c = 0.0;
  double daylight = 0.0;
  double ambient_temp_c = 0.0;
  double ambient_light_pct = 0.0;
  bool door_open = false;
};

/// The service's answer to one request.
struct Response {
  uint64_t id = 0;  ///< assigned at submission, dense per service
  TenantId tenant;
  RequestKind kind = RequestKind::kPlan;
  ServeOutcome outcome = ServeOutcome::kOk;
  Status status;  ///< non-OK iff outcome == kError
  /// Suggested resubmission backoff, set iff outcome == kShed.
  SimTime retry_after_seconds = 0;
  /// now - issue_time at completion, on the sim clock (deterministic).
  SimTime virtual_latency_seconds = 0;
  /// Whether the request carried a deadline (so SLO accounting can count
  /// deadline *hits*, not just the misses visible in the outcome).
  bool had_deadline = false;
  /// Wall execution time of the work item (a measurement; not part of the
  /// determinism contract).
  int64_t wall_ns = 0;
  PlanOutcome plan;         ///< kPlan, outcome kOk
  bool command_delivered = false;  ///< kCommand
  int command_attempts = 0;        ///< kCommand
  TenantStatus tenant_status;      ///< kQuery
  ContextView context;             ///< kQuery/kContext
};

}  // namespace serve
}  // namespace imcf

#endif  // IMCF_SERVE_REQUEST_H_
