#include "serve/fleet_service.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "fault/command_bus.h"
#include "firewall/conflict/conflict_report.h"
#include "firewall/conflict/dataflow_policy.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"
#include "serve/introspection.h"

namespace imcf {
namespace serve {

namespace {

/// Serve instrumentation, resolved once (ISSUE: per-outcome serve metrics,
/// queue depth gauge, admission rejections, end-to-end latency).
struct ServeMetrics {
  obs::Counter* requests[kNumRequestKinds];
  obs::Counter* responses[kNumServeOutcomes];
  obs::Counter* shed_total;
  obs::Gauge* queue_depth;
  obs::Gauge* tenants;
  obs::Histogram* latency_ns;

  static const ServeMetrics& Get() {
    static const ServeMetrics* m = [] {
      auto& reg = obs::MetricRegistry::Default();
      auto* sm = new ServeMetrics();
      for (int k = 0; k < static_cast<int>(kNumRequestKinds); ++k) {
        sm->requests[k] = reg.GetCounter(
            "imcf_serve_requests_total", "Requests submitted, by kind",
            {{"kind", RequestKindName(static_cast<RequestKind>(k))}});
      }
      for (size_t o = 0; o < kNumServeOutcomes; ++o) {
        sm->responses[o] = reg.GetCounter(
            "imcf_serve_responses_total", "Responses produced, by outcome",
            {{"outcome", ServeOutcomeName(static_cast<ServeOutcome>(o))}});
      }
      sm->shed_total = reg.GetCounter(
          "imcf_serve_admission_rejections_total",
          "Requests shed by admission control (shard queue full)");
      sm->queue_depth = reg.GetGauge("imcf_serve_queue_depth",
                                     "Requests queued across all shards");
      sm->tenants =
          reg.GetGauge("imcf_serve_tenants", "Tenants in the fleet");
      sm->latency_ns = reg.GetHistogram(
          "imcf_serve_request_latency_ns",
          "Wall execution latency of served requests",
          obs::LatencyBoundsNs());
      return sm;
    }();
    return *m;
  }
};

/// Sort key placing deadline-free requests after every dated one.
SimTime DeadlineKey(const Request& request) {
  return request.deadline == 0 ? std::numeric_limits<SimTime>::max()
                               : request.deadline;
}

/// Deterministic trace id for a request: a pure function of the dense
/// submission id, so every worker count (and a replayed run) produces the
/// same ids and the canonical span trees compare bit-identical.
uint64_t ServeTraceId(uint64_t request_id) {
  constexpr uint64_t kServeTraceSalt = 0x53455256u;  // "SERV"
  const uint64_t id = MixHash(kServeTraceSalt, request_id);
  return id != 0 ? id : 1;
}

}  // namespace

FleetService::FleetService(FleetOptions options)
    : options_(std::move(options)), fault_plan_(options_.fault) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.workers <= 0) options_.workers = ThreadPool::HardwareThreads();
  registry_ = std::make_unique<TenantRegistry>(options_.shards,
                                               options_.fault,
                                               options_.retry);
  // The ledger shares the registry's shard geometry, and the registry's
  // WithTenant chokepoint charges into it; under IMCF_DISABLE_ACCOUNTING
  // the ledger object exists but nothing ever writes to it.
  cost_ledger_ = std::make_unique<obs::CostLedger>(options_.shards);
  registry_->set_cost_ledger(cost_ledger_.get());
  slo_ = std::make_unique<obs::SloEngine>(options_.slo);
  queues_.reserve(static_cast<size_t>(options_.shards));
  auto& reg = obs::MetricRegistry::Default();
  for (int i = 0; i < options_.shards; ++i) {
    queues_.push_back(std::make_unique<QueueShard>());
    // Shard count is a small fixed config value, so the per-shard label set
    // stays within the obs cardinality rules.
    const obs::Labels labels = {{"shard", std::to_string(i)}};
    shard_depth_.push_back(reg.GetGauge("imcf_serve_queue_depth",
                                        "Requests queued across all shards",
                                        labels));
    shard_wait_ns_.push_back(
        reg.GetHistogram("imcf_serve_queue_wait_ns",
                         "Wall time requests spent queued, by shard",
                         obs::LatencyBoundsNs(), labels));
  }
  // workers == 1 keeps the serial reference path (ParallelFor runs inline).
  if (options_.workers > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.workers);
  }
}

FleetService::~FleetService() = default;

Result<std::unique_ptr<FleetService>> FleetService::Create(
    FleetOptions options) {
  auto service =
      std::unique_ptr<FleetService>(new FleetService(std::move(options)));
  if (!service->options_.store_dir.empty()) {
    IMCF_ASSIGN_OR_RETURN(service->store_,
                          TableStore::Open(service->options_.store_dir));
    IMCF_ASSIGN_OR_RETURN(int recovered,
                          service->registry_->Load(service->store_.get()));
    (void)recovered;
    ServeMetrics::Get().tenants->Set(
        static_cast<double>(service->registry_->size()));
  }
  if (service->options_.status_port >= 0) {
    service->status_server_ = std::make_unique<obs::StatusServer>();
    obs::RegisterDefaultHandlers(service->status_server_.get(),
                                 &obs::MetricRegistry::Default(),
                                 &obs::FlightRecorder::Default());
    RegisterIntrospectionHandlers(service->status_server_.get(),
                                  service.get());
    std::string error;
    if (!service->status_server_->Start(service->options_.status_port,
                                        &error)) {
      return Status::Internal("status server: " + error);
    }
  }
  return service;
}

Status FleetService::AddTenant(const TenantConfig& config) {
  IMCF_RETURN_IF_ERROR(registry_->Admit(config));
  ServeMetrics::Get().tenants->Set(static_cast<double>(registry_->size()));
  return Status::Ok();
}

uint64_t FleetService::TraceIdFor(uint64_t request_id) {
  return ServeTraceId(request_id);
}

std::optional<Response> FleetService::Submit(Request request) {
  return Submit(std::move(request), /*assigned_id=*/nullptr);
}

std::optional<Response> FleetService::Submit(Request request,
                                             uint64_t* assigned_id) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (assigned_id != nullptr) *assigned_id = id;
  metrics.requests[static_cast<int>(request.kind)]->Increment();

  // The request's trace root. The id-derived trace id makes the span tree
  // replayable; the context crosses the enqueue -> drain thread handoff
  // inside the queued request.
  IMCF_TRACE_SPAN_IN(submit_span, "serve.submit", "serve",
                     obs::Tracer::Root(ServeTraceId(id)));
  submit_span.Detail(RequestKindName(request.kind));
  request.trace = submit_span.context();

  Response rejection;
  rejection.id = id;
  rejection.tenant = request.tenant;
  rejection.kind = request.kind;
  if (!registry_->Contains(request.tenant)) {
    IMCF_TRACE_EVENT("serve.tenant_not_found", "serve");
    rejection.outcome = ServeOutcome::kTenantNotFound;
    rejection.status = Status::NotFound("no such tenant: " + request.tenant);
    CountResponse(rejection);
    return rejection;
  }
  const int shard_index = registry_->ShardOf(request.tenant);
  QueueShard& shard = *queues_[static_cast<size_t>(shard_index)];
  bool queued_item = false;
  SimTime retry_after = options_.shed_retry_after_seconds;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.items.size() <
        static_cast<size_t>(options_.queue_capacity)) {
      shard.items.push_back(QueuedItem{id, shard_index,
                                       obs::ScopedTimer::NowNs(),
                                       std::move(request)});
      queued_item = true;
    } else if (shard.drain_items > 0 && shard.drain_gap > 0) {
      // Scale the retry-after hint by the shard's observed drain rate: the
      // estimated sim-time this backlog needs to clear, rounded up, bounded
      // to [base/4, base*8] so a noisy rate estimate can neither tell the
      // submitter "come back immediately" nor park it forever. Integer
      // sim-time arithmetic over drain history that is itself deterministic,
      // so shed hints replay bit-identically at any worker count.
      const SimTime base = options_.shed_retry_after_seconds;
      const SimTime depth = static_cast<SimTime>(shard.items.size());
      const SimTime estimate =
          (depth * shard.drain_gap + shard.drain_items - 1) /
          shard.drain_items;
      const SimTime lo = std::max<SimTime>(1, base / 4);
      const SimTime hi = base * 8;
      retry_after = std::min(hi, std::max(lo, estimate));
    }
  }
  if (queued_item) {
    // Outside the shard lock: the gauge update re-reads every shard.
    UpdateQueueDepthGauge();
    return std::nullopt;
  }
  // Load shedding: reject-with-retry-after instead of buffering without
  // bound; the submitter owns the backoff.
  IMCF_TRACE_EVENT("serve.shed", "serve", /*detail=*/{}, "shard",
                   shard_index);
  sheds_since_check_.fetch_add(1, std::memory_order_relaxed);
  rejection.outcome = ServeOutcome::kShed;
  rejection.retry_after_seconds = retry_after;
  metrics.shed_total->Increment();
#if IMCF_ACCOUNTING_ENABLED
  // Sheds enter the SLO windows at submission time: they never reach a
  // drain, so this is the only edge that can see them.
  obs::SloEvent shed_event;
  shed_event.sim_time = request.issue_time;
  shed_event.shed = true;
  shed_event.trace_id = ServeTraceId(id);
  slo_->Observe(request.tenant, shed_event);
#endif
  CountResponse(rejection);
  return rejection;
}

Status FleetService::ExecutePlan(Tenant& tenant, const Request& request,
                                 core::PlanArena* arena, Response* response) {
  IMCF_ASSIGN_OR_RETURN(
      sim::SimulationReport report,
      tenant.simulator().Run(request.plan.policy, request.plan.rep, arena));
  response->plan.fce_pct = report.fce_pct;
  response->plan.fe_kwh = report.fe_kwh;
  response->plan.within_budget = report.within_budget;
  response->plan.commands_issued = report.commands_issued;
  response->plan.commands_dropped = report.commands_dropped;
  tenant.stats().plans_served += 1;
  tenant.stats().fe_kwh_total += report.fe_kwh;
  return Status::Ok();
}

Status FleetService::ExecuteCommand(Tenant& tenant, const Request& request,
                                    Response* response) {
  const devices::DeviceKind kind =
      request.command.type == devices::CommandType::kSetLight
          ? devices::DeviceKind::kLight
          : devices::DeviceKind::kHvac;
  IMCF_ASSIGN_OR_RETURN(
      devices::DeviceId device,
      tenant.simulator().registry().FindByUnitAndKind(request.command.unit,
                                                      kind));
  devices::ActuationCommand cmd;
  cmd.device = device;
  cmd.type = request.command.type;
  cmd.value = request.command.value;
  cmd.time = request.command.time != 0 ? request.command.time
                                       : request.issue_time;
  cmd.source = "serve";
  // The fleet's FaultPlan gates the last hop to the tenant's device; the
  // decision is a pure function of (seed, device channel, cmd.time), so
  // delivery outcomes replay identically at any worker count.
  fault::CommandBus bus(&fault_plan_, options_.retry,
                        &tenant.simulator().registry());
#if IMCF_ACCOUNTING_ENABLED
  const int64_t bus_start_ns = obs::ScopedTimer::NowNs();
#endif
  const fault::Delivery delivery = bus.Deliver(cmd);
  IMCF_COST_ADD_PHASE_NS(obs::CostPhase::kCommandBus,
                         obs::ScopedTimer::NowNs() - bus_start_ns);
  // Faults charged to the tenant: every failed attempt (a delivered
  // command with N attempts burned N-1 faults; an undelivered one, N).
  IMCF_COST_ADD_FAULT(delivery.delivered ? delivery.attempts - 1
                                         : delivery.attempts);
  response->command_delivered = delivery.delivered;
  response->command_attempts = delivery.attempts;
  if (delivery.delivered) tenant.stats().commands_served += 1;
  return Status::Ok();
}

Status FleetService::ExecuteQuery(Tenant& tenant, const Request& request,
                                  Response* response) {
  if (request.query.kind == QueryKind::kContext) {
    // Context queries answer through the tenant's dataflow policy: only
    // the fields its own rule set references leave the firewall; the rest
    // stay at their zero defaults (PFirewall-style minimal forwarding).
    IMCF_ASSIGN_OR_RETURN(
        rules::EvaluationContext raw,
        tenant.simulator().ContextAt(request.issue_time, request.query.unit));
    const firewall::conflict::DataflowPolicy& policy =
        tenant.dataflow_policy();
    const rules::EvaluationContext filtered =
        firewall::conflict::FilterContext(raw, policy);
    ContextView& view = response->context;
    view.fields = policy.fields;
    view.time = filtered.time;
    view.season = static_cast<int>(filtered.weather.season);
    view.sky = static_cast<int>(filtered.weather.sky);
    view.outdoor_temp_c = filtered.weather.outdoor_temp_c;
    view.daylight = filtered.weather.daylight;
    view.ambient_temp_c = filtered.ambient_temp_c;
    view.ambient_light_pct = filtered.ambient_light_pct;
    view.door_open = filtered.door_open;
    tenant.stats().queries_served += 1;
    return Status::Ok();
  }
  TenantStatus& status = response->tenant_status;
  status.plans_served = tenant.stats().plans_served;
  status.commands_served = tenant.stats().commands_served;
  status.budget_kwh = tenant.simulator().total_budget_kwh();
  status.devices = static_cast<int>(tenant.simulator().registry().size());
  status.units = tenant.simulator().options().spec.units;
  tenant.stats().queries_served += 1;
  return Status::Ok();
}

Status FleetService::ExecuteMrtUpdate(Tenant& tenant, const Request& request,
                                      Response* response) {
  firewall::conflict::ConflictReport report;
  const Status applied =
      registry_->ApplyMrtUpdate(tenant, request.mrt_update, &report);
  if (applied.ok()) return Status::Ok();
  if (!report.ok()) {
    // The conflict pass vetoed the new rule set: a first-class outcome, not
    // an error. The tenant keeps serving its previous rules; the status
    // carries the finding summary back to the submitter.
    response->outcome = ServeOutcome::kConflictRejected;
    response->status = applied;
    return Status::Ok();
  }
  return applied;  // build/config failure -> kError
}

Response FleetService::Execute(const QueuedItem& item, SimTime now,
                               core::PlanArena* arena) {
  const Request& request = item.request;
  Response response;
  response.id = item.id;
  response.tenant = request.tenant;
  response.kind = request.kind;
  response.virtual_latency_seconds = now - request.issue_time;
  response.had_deadline = request.deadline != 0;

  // The worker half of the request's trace: parented on the submit span
  // carried inside the request, so the cross-thread handoff keeps one
  // request one tree.
  IMCF_TRACE_SPAN_IN(execute_span, "serve.execute", "serve", request.trace);
  execute_span.SimSpan(request.issue_time, now);

  // Deadline check against the drain's virtual now — never wall time — so
  // expiry is independent of scheduling order and worker count.
  if (request.deadline != 0 && request.deadline < now) {
    execute_span.Detail("deadline_exceeded");
    response.outcome = ServeOutcome::kDeadlineExceeded;
    (void)registry_->WithTenant(request.tenant, [](Tenant& tenant) {
      tenant.stats().deadline_expired += 1;
      return Status::Ok();
    });
    return response;
  }

  const int64_t start_ns = obs::ScopedTimer::NowNs();
  const Status lookup =
      registry_->WithTenant(request.tenant, [&](Tenant& tenant) {
        Status work;
        switch (request.kind) {
          case RequestKind::kPlan:
            work = ExecutePlan(tenant, request, arena, &response);
            break;
          case RequestKind::kCommand:
            work = ExecuteCommand(tenant, request, &response);
            break;
          case RequestKind::kQuery:
            work = ExecuteQuery(tenant, request, &response);
            break;
          case RequestKind::kMrtUpdate:
            work = ExecuteMrtUpdate(tenant, request, &response);
            break;
        }
        if (work.ok()) {
          // ExecuteMrtUpdate sets kConflictRejected itself; every other
          // clean completion is kOk.
          if (response.outcome != ServeOutcome::kConflictRejected) {
            response.outcome = ServeOutcome::kOk;
          }
        } else {
          response.outcome = ServeOutcome::kError;
          response.status = work;
        }
        return Status::Ok();
      });
  response.wall_ns = obs::ScopedTimer::NowNs() - start_ns;
  if (!lookup.ok()) {
    // Tenant removed between admission and execution.
    response.outcome = ServeOutcome::kTenantNotFound;
    response.status = lookup;
  }
  execute_span.Detail(ServeOutcomeName(response.outcome));
  return response;
}

std::vector<Response> FleetService::Drain(SimTime now) {
  // 1. Snapshot every shard queue (per-tenant FIFO is the shard order).
  // Queue wait is observed here, on the draining thread: it is a wall
  // measurement, so it feeds the per-shard histogram but never a span arg.
  const int64_t drain_start_ns = obs::ScopedTimer::NowNs();
  std::map<TenantId, std::vector<QueuedItem>> per_tenant;
  for (const auto& shard : queues_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Drain-rate bookkeeping for the shed path's retry-after hint: a
    // non-empty drain with an elapsed sim-time gap records (items, gap).
    // Pure sim-clock state, so hints stay deterministic.
    if (!shard->items.empty() && shard->last_drain_now != 0 &&
        now > shard->last_drain_now) {
      shard->drain_gap = now - shard->last_drain_now;
      shard->drain_items = static_cast<int64_t>(shard->items.size());
    }
    shard->last_drain_now = now;
    for (QueuedItem& item : shard->items) {
      shard_wait_ns_[static_cast<size_t>(item.shard)]->Observe(
          static_cast<double>(drain_start_ns - item.enqueue_ns));
#if IMCF_ACCOUNTING_ENABLED
      // Queue wait is charged here because no ScopedCost is open while the
      // request sits in the queue — the drain is the first point where both
      // the tenant and the wait are known.
      cost_ledger_->AddPhaseNs(item.shard, item.request.tenant,
                               obs::CostPhase::kQueueWait,
                               drain_start_ns - item.enqueue_ns);
#endif
      per_tenant[item.request.tenant].push_back(std::move(item));
    }
    shard->items.clear();
  }
  UpdateQueueDepthGauge();

  // 2. Deadline-aware order within each tenant: earliest deadline first,
  // submission order among equals (stable + id tiebreak = deterministic).
  for (auto& [tenant, items] : per_tenant) {
    std::stable_sort(items.begin(), items.end(),
                     [](const QueuedItem& a, const QueuedItem& b) {
                       const SimTime da = DeadlineKey(a.request);
                       const SimTime db = DeadlineKey(b.request);
                       if (da != db) return da < db;
                       return a.id < b.id;
                     });
  }

  // 3. Fair round-robin interleave across tenants (sorted by id via the
  // map): round r takes each tenant's r-th request, so a tenant with a
  // deep backlog cannot monopolize the pool ahead of everyone's first
  // request.
  std::vector<QueuedItem> dispatch;
  for (size_t round = 0;; ++round) {
    bool any = false;
    for (auto& [tenant, items] : per_tenant) {
      if (round < items.size()) {
        dispatch.push_back(std::move(items[round]));
        any = true;
      }
    }
    if (!any) break;
  }

  // 4. Fan out on the pool in batched execution units: consecutive
  // dispatch entries share one PlanArena, so a pass over many tenants
  // plans against warm evaluator storage instead of cold heap per plan.
  // Each item still writes only its own response slot and executes
  // independently, so unit boundaries never change outcomes — only where
  // the evaluator's memory comes from. With multiple workers the unit size
  // shrinks so the pool stays saturated.
  const int n = static_cast<int>(dispatch.size());
  int unit_cap = std::max(1, options_.plan_batch);
  if (pool_ != nullptr && n > 0) {
    const int eff_workers = std::max(1, options_.workers);
    unit_cap = std::max(1, std::min(unit_cap, n / (eff_workers * 2)));
  }
  const int n_units = n == 0 ? 0 : (n + unit_cap - 1) / unit_cap;
  std::vector<Response> responses(static_cast<size_t>(n));
  ParallelFor(pool_.get(), n_units, [&](int u) {
    core::PlanArena arena;
    const int begin = u * unit_cap;
    const int end = std::min(n, begin + unit_cap);
    for (int i = begin; i < end; ++i) {
      responses[static_cast<size_t>(i)] =
          Execute(dispatch[static_cast<size_t>(i)], now, &arena);
    }
  });

  // 5. Deterministic response order + metrics, on the draining thread.
  std::sort(responses.begin(), responses.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });
  for (const Response& response : responses) CountResponse(response);

  last_drain_now_.store(now, std::memory_order_relaxed);
  FeedSlo(responses, now);
  MaybeDumpSpike(responses);
  LogSlowRequests(responses);
  return responses;
}

void FleetService::MaybeDumpSpike(const std::vector<Response>& responses) {
  // Spike detector: a burst of shed/deadline-exceeded outcomes is exactly
  // the moment the flight recorder exists for — dump it before the rings
  // overwrite the evidence.
  int64_t spikes = sheds_since_check_.exchange(0, std::memory_order_relaxed);
  for (const Response& response : responses) {
    if (response.outcome == ServeOutcome::kDeadlineExceeded) ++spikes;
  }
  if (options_.spike_dump_threshold <= 0 || options_.trace_dump_dir.empty() ||
      spikes < options_.spike_dump_threshold) {
    return;
  }
  const int seq = spike_dumps_.fetch_add(1, std::memory_order_relaxed);
  const std::string path =
      options_.trace_dump_dir + StrFormat("/trace_spike_%d.json", seq);
  if (DumpTrace(path)) {
    IMCF_LOG(kWarning) << "serve spike (" << spikes
                       << " shed/deadline-exceeded): dumped trace to "
                       << path;
  } else {
    IMCF_LOG(kWarning) << "serve spike: failed to write trace to " << path;
  }
}

void FleetService::LogSlowRequests(const std::vector<Response>& responses) {
  if (options_.slow_request_wall_ns <= 0) return;
  // One recorder snapshot covers every outlier in this drain; the sampled
  // structured line carries the collapsed span tree (firewall verdicts
  // included as fw.drop events) so an outlier is explainable post hoc.
  std::vector<obs::SpanRecord> snapshot;
  bool snapshotted = false;
  for (const Response& response : responses) {
    if (response.wall_ns < options_.slow_request_wall_ns) continue;
    if (!snapshotted) {
      snapshot = obs::FlightRecorder::Default().Snapshot();
      snapshotted = true;
    }
    IMCF_LOG(kWarning) << "slow request id=" << response.id << " tenant="
                       << response.tenant << " kind="
                       << RequestKindName(response.kind) << " outcome="
                       << ServeOutcomeName(response.outcome) << " wall_ns="
                       << response.wall_ns << " vlat_s="
                       << response.virtual_latency_seconds << " spans="
                       << obs::CompactTraceLine(snapshot,
                                                ServeTraceId(response.id));
  }
}

bool FleetService::DumpTrace(const std::string& path) const {
  return obs::WriteTraceJson(obs::FlightRecorder::Default(), path);
}

Response FleetService::Call(Request request, SimTime now) {
  // RPC convenience: drains everything queued; intended for callers that
  // interleave submits and drains one request at a time.
  std::optional<Response> immediate = Submit(std::move(request));
  if (immediate.has_value()) return *immediate;
  const uint64_t id = next_id_.load(std::memory_order_relaxed) - 1;
  std::vector<Response> responses = Drain(now);
  for (Response& response : responses) {
    if (response.id == id) return std::move(response);
  }
  Response lost;
  lost.id = id;
  lost.outcome = ServeOutcome::kError;
  lost.status = Status::Internal("drained without a response");
  return lost;
}

Status FleetService::Checkpoint() {
  if (store_ == nullptr) return Status::Ok();
  return registry_->Save(store_.get());
}

Status FleetService::Stop(SimTime now) {
  (void)Drain(now);
  return Checkpoint();
}

size_t FleetService::queued() const {
  size_t n = 0;
  for (const auto& shard : queues_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->items.size();
  }
  return n;
}

std::vector<size_t> FleetService::queue_depths() const {
  std::vector<size_t> depths;
  depths.reserve(queues_.size());
  for (const auto& shard : queues_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    depths.push_back(shard->items.size());
  }
  return depths;
}

void FleetService::FeedSlo(const std::vector<Response>& responses,
                           SimTime now) {
#if IMCF_ACCOUNTING_ENABLED
  for (const Response& response : responses) {
    if (response.outcome == ServeOutcome::kTenantNotFound ||
        response.tenant.empty()) {
      continue;
    }
    obs::SloEvent event;
    event.sim_time = now;
    event.is_plan = response.kind == RequestKind::kPlan &&
                    response.outcome == ServeOutcome::kOk;
    event.plan_wall_ns = response.wall_ns;
    event.had_deadline = response.had_deadline;
    event.deadline_miss = response.outcome == ServeOutcome::kDeadlineExceeded;
    event.trace_id = ServeTraceId(response.id);
    slo_->Observe(response.tenant, event);
  }
  const std::vector<obs::BurnStatus> fresh = slo_->NewlyFiring(now);
  if (fresh.empty()) return;
  for (const obs::BurnStatus& burn : fresh) {
    IMCF_LOG(kWarning) << "SLO burn: tenant=" << burn.tenant << " objective="
                       << obs::SloObjectiveName(burn.objective)
                       << " short_burn=" << burn.short_burn << " long_burn="
                       << burn.long_burn << " exemplar_trace_id=0x"
                       << StrFormat("%016llx",
                                    static_cast<unsigned long long>(
                                        burn.exemplar_trace_id));
  }
  if (options_.trace_dump_dir.empty()) return;
  // A newly burning SLO triggers the same evidence-preservation move as a
  // shed spike: dump the flight recorder before the rings overwrite it.
  const int seq = slo_dumps_.fetch_add(1, std::memory_order_relaxed);
  const std::string path =
      options_.trace_dump_dir + StrFormat("/trace_slo_%d.json", seq);
  if (DumpTrace(path)) {
    IMCF_LOG(kWarning) << "SLO burn: dumped trace to " << path;
  } else {
    IMCF_LOG(kWarning) << "SLO burn: failed to write trace to " << path;
  }
#else
  (void)responses;
  (void)now;
#endif
}

void FleetService::CountResponse(const Response& response) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.responses[static_cast<size_t>(response.outcome)]->Increment();
  if (response.outcome == ServeOutcome::kOk && response.wall_ns > 0) {
    // The request's trace id rides along as the bucket exemplar, so a
    // latency bucket on /metrics links straight to a /tracez span tree.
    metrics.latency_ns->Observe(static_cast<double>(response.wall_ns),
                                ServeTraceId(response.id));
  }
#if IMCF_ACCOUNTING_ENABLED
  // Outcome tallies (the deterministic half of the ledger). Unknown-tenant
  // responses have no row to charge.
  if (response.outcome != ServeOutcome::kTenantNotFound &&
      !response.tenant.empty()) {
    obs::TenantCost delta;
    switch (response.outcome) {
      case ServeOutcome::kOk:
        switch (response.kind) {
          case RequestKind::kPlan:
            delta.plans_ok = 1;
            break;
          case RequestKind::kCommand:
            delta.commands_ok = 1;
            break;
          case RequestKind::kQuery:
            delta.queries_ok = 1;
            break;
          case RequestKind::kMrtUpdate:
            // Accepted rule-set swap. Deliberately NOT plans_ok: the ledger
            // witness separates serving plans from mutating rule sets.
            delta.mrt_updates_ok = 1;
            break;
        }
        break;
      case ServeOutcome::kError:
        delta.errors = 1;
        break;
      case ServeOutcome::kShed:
        delta.sheds = 1;
        break;
      case ServeOutcome::kDeadlineExceeded:
        delta.deadline_misses = 1;
        break;
      case ServeOutcome::kConflictRejected:
        // A vetoed update is never charged as applied work of any kind.
        delta.conflict_rejections = 1;
        break;
      case ServeOutcome::kTenantNotFound:
        break;
    }
    cost_ledger_->Apply(registry_->ShardOf(response.tenant), response.tenant,
                        delta);
  }
#endif
  if (options_.per_tenant_metrics && !response.tenant.empty()) {
    obs::MetricRegistry::Default()
        .GetCounter("imcf_serve_tenant_responses_total",
                    "Responses produced, by tenant",
                    {{"tenant", response.tenant}})
        ->Increment();
  }
}

void FleetService::UpdateQueueDepthGauge() {
  size_t total = 0;
  for (size_t i = 0; i < queues_.size(); ++i) {
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(queues_[i]->mu);
      depth = queues_[i]->items.size();
    }
    shard_depth_[i]->Set(static_cast<double>(depth));
    total += depth;
  }
  ServeMetrics::Get().queue_depth->Set(static_cast<double>(total));
}

}  // namespace serve
}  // namespace imcf
