#include "serve/introspection.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/accounting/cost_ledger.h"
#include "obs/json_writer.h"
#include "obs/slo/slo_engine.h"
#include "obs/status_server/status_server.h"
#include "serve/fleet_service.h"

namespace imcf {
namespace serve {

namespace {

constexpr const char* kJsonContentType = "application/json; charset=utf-8";

std::string StatuszJson(const FleetService& service,
                        const obs::StatusServer& server) {
  const FleetOptions& options = service.options();
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("service").String("imcf-fleet");
  json.Key("accounting_enabled").Bool(IMCF_ACCOUNTING_ENABLED != 0);
  json.Key("options").BeginObject();
  json.Key("shards").Int(options.shards);
  json.Key("workers").Int(options.workers);
  json.Key("queue_capacity").Int(options.queue_capacity);
  json.Key("plan_batch").Int(options.plan_batch);
  json.Key("status_port").Int(server.port());
  json.EndObject();
  json.Key("tenants").Int(static_cast<int64_t>(service.registry().size()));
  json.Key("queued").Int(static_cast<int64_t>(service.queued()));
  json.Key("queue_depths").BeginArray();
  for (size_t depth : service.queue_depths()) {
    json.Int(static_cast<int64_t>(depth));
  }
  json.EndArray();
  json.Key("last_drain_time").Int(service.last_drain_time());
  json.Key("status_requests_served").Int(server.requests_served());
  json.EndObject();
  return json.str();
}

/// Parses the "k" query parameter (row cap); absent or malformed reads 0,
/// which TopK treats as "all tenants".
size_t ParseK(const obs::HttpRequest& request) {
  auto it = request.query.find("k");
  if (it == request.query.end()) return 0;
  return static_cast<size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
}

}  // namespace

void RegisterIntrospectionHandlers(obs::StatusServer* server,
                                   FleetService* service) {
  if (server == nullptr || service == nullptr) return;
  server->Handle("/statusz", [service, server](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = kJsonContentType;
    response.body = StatuszJson(*service, *server);
    return response;
  });
  server->Handle("/tenantz", [service](const obs::HttpRequest& request) {
    obs::CostSortKey key = obs::CostSortKey::kCpu;
    auto it = request.query.find("sort");
    if (it != request.query.end()) key = obs::ParseCostSortKey(it->second);
    obs::HttpResponse response;
    response.content_type = kJsonContentType;
    response.body = service->cost_ledger().ToJson(ParseK(request), key);
    return response;
  });
  server->Handle("/sloz", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = kJsonContentType;
    // Evaluated at the fleet's clock, not wall time: the burn windows
    // slide on sim seconds, and the last drain is "now" in that domain.
    response.body = service->slo_engine().ToJson(service->last_drain_time());
    return response;
  });
}

}  // namespace serve
}  // namespace imcf
