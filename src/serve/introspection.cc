#include "serve/introspection.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/accounting/cost_ledger.h"
#include "obs/json_writer.h"
#include "obs/slo/slo_engine.h"
#include "obs/status_server/status_server.h"
#include "serve/fleet_service.h"

namespace imcf {
namespace serve {

namespace {

constexpr const char* kJsonContentType = "application/json; charset=utf-8";

std::string StatuszJson(const FleetService& service,
                        const obs::StatusServer& server) {
  const FleetOptions& options = service.options();
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("service").String("imcf-fleet");
  json.Key("accounting_enabled").Bool(IMCF_ACCOUNTING_ENABLED != 0);
  json.Key("options").BeginObject();
  json.Key("shards").Int(options.shards);
  json.Key("workers").Int(options.workers);
  json.Key("queue_capacity").Int(options.queue_capacity);
  json.Key("plan_batch").Int(options.plan_batch);
  json.Key("status_port").Int(server.port());
  json.EndObject();
  json.Key("tenants").Int(static_cast<int64_t>(service.registry().size()));
  json.Key("queued").Int(static_cast<int64_t>(service.queued()));
  json.Key("queue_depths").BeginArray();
  for (size_t depth : service.queue_depths()) {
    json.Int(static_cast<int64_t>(depth));
  }
  json.EndArray();
  json.Key("last_drain_time").Int(service.last_drain_time());
  json.Key("status_requests_served").Int(server.requests_served());
  json.EndObject();
  return json.str();
}

/// Parses the "k" query parameter (row cap); absent or malformed reads 0,
/// which TopK treats as "all tenants".
size_t ParseK(const obs::HttpRequest& request) {
  auto it = request.query.find("k");
  if (it == request.query.end()) return 0;
  return static_cast<size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
}

obs::HttpResponse BadRequest(const std::string& message) {
  obs::HttpResponse response;
  response.status = 400;
  response.body = message + "\n";
  return response;
}

/// Strict /tenantz parameter validation: a typo'd sort key or a garbage row
/// cap gets a 400 with the valid forms spelled out, not a silently
/// defaulted page the operator mistakes for the one they asked for.
/// ParseCostSortKey / ParseK keep their lenient defaults for library
/// callers; the strictness lives at the HTTP edge.
bool ValidTenantzSort(const std::string& value) {
  return value == "cpu" || value == "bytes" || value == "plans" ||
         value == "sheds";
}

bool ValidTenantzK(const std::string& value) {
  if (value.empty() || value.size() > 9) return false;  // bounded, no sign
  for (char c : value) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

void RegisterIntrospectionHandlers(obs::StatusServer* server,
                                   FleetService* service) {
  if (server == nullptr || service == nullptr) return;
  server->Handle("/statusz", [service, server](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = kJsonContentType;
    response.body = StatuszJson(*service, *server);
    return response;
  });
  server->Handle("/tenantz", [service](const obs::HttpRequest& request) {
    obs::CostSortKey key = obs::CostSortKey::kCpu;
    auto it = request.query.find("sort");
    if (it != request.query.end()) {
      if (!ValidTenantzSort(it->second)) {
        return BadRequest("bad sort parameter '" + it->second +
                          "': want sort=cpu|bytes|plans|sheds");
      }
      key = obs::ParseCostSortKey(it->second);
    }
    auto kit = request.query.find("k");
    if (kit != request.query.end() && !ValidTenantzK(kit->second)) {
      return BadRequest("bad k parameter '" + kit->second +
                        "': want a small non-negative integer");
    }
    obs::HttpResponse response;
    response.content_type = kJsonContentType;
    response.body = service->cost_ledger().ToJson(ParseK(request), key);
    return response;
  });
  server->Handle("/conflictz", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = kJsonContentType;
    response.body = service->registry().conflict_analyzer().ToJson();
    return response;
  });
  server->Handle("/sloz", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = kJsonContentType;
    // Evaluated at the fleet's clock, not wall time: the burn windows
    // slide on sim seconds, and the last drain is "now" in that domain.
    response.body = service->slo_engine().ToJson(service->last_drain_time());
    return response;
  });
}

}  // namespace serve
}  // namespace imcf
