// TenantTable: an open-addressing (robin-hood) hash table mapping
// TenantId -> shared_ptr<Tenant>, the per-shard tenant directory.
//
// The registry previously kept each shard's tenants in a std::map: every
// lookup chased red-black tree nodes and compared full id strings along
// the path — fine for hundreds of tenants, wrong for the ROADMAP's
// millions, where Find() sits on the admission path of every request.
// This table stores (hash, key, value) triples in one flat array probed
// linearly with robin-hood displacement:
//
//   - the probe sequence touches consecutive cache lines, not tree nodes;
//   - the cached 64-bit hash (fault::ChannelHash — FNV-1a + avalanche,
//     platform-stable) filters out almost every non-matching slot before
//     any string comparison;
//   - robin-hood insertion ("steal from the rich") bounds the variance of
//     probe lengths, so worst-case lookups stay short even at high load;
//   - backward-shift deletion keeps probe chains contiguous without
//     tombstones, so a long-lived fleet with churn never degrades.
//
// Capacity is a power of two, grown at 7/8 load. Iteration order is
// unspecified (callers that need determinism sort, exactly as they did
// with std::map — see TenantRegistry::TenantIds).
//
// Not thread-safe: each registry shard guards its table with the shard
// mutex, unchanged from the std::map it replaces.

#ifndef IMCF_SERVE_TENANT_TABLE_H_
#define IMCF_SERVE_TENANT_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/request.h"

namespace imcf {
namespace serve {

class Tenant;

class TenantTable {
 public:
  TenantTable() = default;

  TenantTable(const TenantTable&) = delete;
  TenantTable& operator=(const TenantTable&) = delete;
  TenantTable(TenantTable&&) = default;
  TenantTable& operator=(TenantTable&&) = default;

  /// The value for `id`, or nullptr when absent.
  std::shared_ptr<Tenant> Find(const TenantId& id) const;

  bool Contains(const TenantId& id) const;

  /// Inserts; returns false (and leaves the table unchanged) when the id
  /// is already present.
  bool Insert(const TenantId& id, std::shared_ptr<Tenant> value);

  /// Removes; returns false when the id was absent.
  bool Erase(const TenantId& id);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Calls fn(id, value) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.used) fn(slot.key, slot.value);
    }
  }

  /// Slots currently allocated (test/introspection surface).
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t hash = 0;
    bool used = false;
    TenantId key;
    std::shared_ptr<Tenant> value;
  };

  /// Probe distance of the entry in `index` from its home slot.
  size_t DistanceFromHome(uint64_t hash, size_t index) const {
    const size_t home = static_cast<size_t>(hash) & mask_;
    return (index - home) & mask_;
  }

  /// Index of `id`'s slot, or SIZE_MAX when absent.
  size_t FindSlot(const TenantId& id) const;

  void Grow();

  std::vector<Slot> slots_;
  size_t mask_ = 0;  ///< slots_.size() - 1 when non-empty
  size_t size_ = 0;
};

}  // namespace serve
}  // namespace imcf

#endif  // IMCF_SERVE_TENANT_TABLE_H_
