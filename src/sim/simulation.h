// Trace-driven simulation engine.
//
// "We have adopted a trace-driven experimental methodology in which real
// datasets are fed into our simulator" (§III-A). The Simulator binds one
// dataset's ambient series, weather, device models, rule tables, the
// amortization plan, a planning policy and the meta-control firewall, runs
// the hourly slot loop over the evaluation period and reports the paper's
// three metrics:
//
//   F_CE — convenience error, % (average normalised error per activation)
//   F_E  — energy consumption, kWh (all actuations that pass the firewall)
//   F_T  — CPU time, seconds (the planning/evaluation work per policy)
//
// Every policy (NR / MR / IFTTT / EP / SA) runs through the *same* command
// pipeline: rules emit ActuationCommands, the firewall applies the slot
// plan, and accepted commands actuate devices and charge the budget ledger.

#ifndef IMCF_SIM_SIMULATION_H_
#define IMCF_SIM_SIMULATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "core/annealer.h"
#include "core/baselines.h"
#include "core/genetic.h"
#include "core/hill_climber.h"
#include "core/plan_arena.h"
#include "energy/amortization.h"
#include "energy/budget.h"
#include "energy/carbon.h"
#include "fault/fault_plan.h"
#include "fault/retry.h"
#include "firewall/imcf_firewall.h"
#include "rules/meta_rule.h"
#include "rules/trigger_rule.h"
#include "trace/dataset.h"

namespace imcf {
namespace sim {

/// Planning policy under evaluation (the algorithms of §III-A).
enum class Policy {
  kNoRule,
  kIfttt,
  kEnergyPlanner,
  kMetaRule,
  kAnnealer,
  kGenetic,
};

const char* PolicyName(Policy policy);

/// Simulation configuration.
struct SimulationOptions {
  trace::DatasetSpec spec;          ///< dataset under test
  SimTime start = 0;                ///< 0 selects the paper's 3-year period
  int hours = 0;                    ///< 0 selects the full period
  /// Planning-slot width in hours (Algorithm 1's time granularity t:
  /// "hourly, daily, monthly, yearly preference"). Coarser slots plan a
  /// whole span at once from its midpoint conditions — cheaper but less
  /// accurate (bench_ablation_granularity).
  int slot_hours = 1;
  double budget_kwh = 0.0;          ///< 0 selects the Table II budget
  double savings_fraction = 0.0;    ///< Fig. 9 knob: budget *= (1 - s)
  energy::AmortizationKind amortization = energy::AmortizationKind::kEaf;
  double balloon_fraction = 0.30;   ///< BLAF π
  std::vector<int> balloon_months = {4, 5, 6, 7, 8, 9, 10};
  core::EpOptions ep;               ///< EP parameters (Figs. 7/8)
  core::SaOptions sa;               ///< SA parameters (ablation)
  core::GaOptions ga;               ///< GA parameters (ablation)
  /// How conflicting IFTTT recipes are arbitrated. Last-match models all
  /// applets firing in table order with later writers winning — the
  /// energy-oblivious behaviour the paper's baseline captures.
  rules::MatchPolicy ifttt_policy = rules::MatchPolicy::kLastMatch;
  /// Extra IFTTT recipes appended after the stock Table III rows (the
  /// fleet's MRT-update path installs tenant-submitted recipes here; the
  /// conflict pass vets them before a simulator is built).
  std::vector<rules::TriggerRule> ifttt_extra;
  /// Bank unused slot budget for later slots (net metering: "energy excess
  /// on a sunny day can be used at later stages within a yearly cycle").
  /// Without banking, a flat hourly constraint can never fund the night
  /// heating peak — bench_ablation_amortization quantifies the effect.
  bool carryover = true;
  /// Bank depth in multiples of the hourly budget (0 = unbounded). A
  /// bounded bank models net-metering settlement windows and keeps the
  /// planner from riding the budget ceiling all year.
  double carryover_cap_hours = 48.0;
  /// Carbon-aware budget tilt strength in [0, 1]: 0 disables; larger
  /// values shift each day's budget toward clean-grid hours at the same
  /// total (§V future work; bench_ablation_carbon).
  double carbon_alpha = 0.0;
  /// Grid mix for CO2 accounting (always reported) and for the tilt.
  energy::CarbonProfileOptions carbon;
  /// Fault injection on the command/weather path. Disabled by default, in
  /// which case the run is bit-identical to a build without the fault
  /// layer (no bus is constructed, no plan is consulted).
  fault::FaultOptions fault;
  /// Retry/backoff policy the command bus applies when faults are enabled.
  fault::RetryPolicy retry;
  /// Test seam: invoked on each run's firewall admin chain before the slot
  /// loop (e.g. to install deny rules for accounting tests).
  std::function<void(firewall::Chain*)> chain_setup;
  uint64_t seed = 1;                ///< master seed (MRT variation, planner)
  /// Worker threads for fanning out independent repetitions in
  /// RunRepeated. 1 (the default) keeps the serial reference path; 0
  /// selects the hardware concurrency. Every repetition derives its random
  /// streams from MixHash(seed, rep, policy) and is aggregated in
  /// repetition order, so results are bit-identical for every thread
  /// count (see DESIGN.md §Concurrency).
  int threads = 1;
};

/// Results of one simulation run.
struct SimulationReport {
  std::string dataset;
  std::string policy;
  double fce_pct = 0.0;       ///< F_CE
  double fe_kwh = 0.0;        ///< F_E
  double ft_seconds = 0.0;    ///< F_T
  double budget_kwh = 0.0;    ///< enforced total budget
  bool within_budget = false; ///< F_E <= budget
  int64_t slots = 0;
  int64_t activations = 0;    ///< rule-slot activations measured
  int64_t commands_issued = 0;
  int64_t commands_dropped = 0;
  /// Commands the plan accepted but the bus could not deliver
  /// (DecisionReason::kDeviceUnavailable); subset of commands_dropped.
  int64_t commands_failed = 0;
  double mean_adopted_fraction = 0.0;  ///< avg share of active rules adopted
  double co2_kg = 0.0;  ///< grid CO2 footprint of the consumed energy
};

/// Mean ± stddev over repetitions of one (policy, dataset) cell.
struct RepeatedReport {
  std::string dataset;
  std::string policy;
  RunningStat fce_pct;
  RunningStat fe_kwh;
  RunningStat ft_seconds;
  RunningStat co2_kg;
};

/// The simulator. Construct, Prepare() once (builds the ambient series —
/// the expensive part), then Run() any number of policies/repetitions
/// against the shared series.
class Simulator {
 public:
  explicit Simulator(SimulationOptions options);

  /// Materialises ambient series, rule tables, devices and the
  /// amortization plan.
  Status Prepare();

  /// Runs one policy once. `rep` seeds the per-repetition random streams.
  /// `arena` backs the per-slot evaluator tables (reset before every slot);
  /// batched callers (fleet drain, cloud controller) lend one arena across
  /// many runs so evaluator construction stops allocating after warm-up.
  /// Null uses a run-local arena.
  Result<SimulationReport> Run(Policy policy, int rep = 0,
                               core::PlanArena* arena = nullptr) const;

  /// Runs `repetitions` independent runs (the paper uses ten). Repetitions
  /// fan out across `threads` workers (0 selects options().threads; 1 is
  /// the inline serial path); per-repetition seeding makes the aggregate
  /// bit-identical for every thread count.
  Result<RepeatedReport> RunRepeated(Policy policy, int repetitions,
                                     int threads = 0) const;

  /// Runs every (policy, repetition) cell of `policies`, fanning the whole
  /// grid out across `threads` workers. Returns one RepeatedReport per
  /// policy, in the order given. Equivalent to calling RunRepeated per
  /// policy; the flat grid keeps all cores busy when some policies are much
  /// cheaper than others.
  Result<std::vector<RepeatedReport>> RunGrid(
      const std::vector<Policy>& policies, int repetitions,
      int threads = 0) const;

  /// Re-tunes the EP/SA parameters between runs (Figs. 7/8 sweeps reuse
  /// one prepared simulator).
  void set_ep_options(const core::EpOptions& ep) { options_.ep = ep; }
  void set_sa_options(const core::SaOptions& sa) { options_.sa = sa; }

  /// Re-derives the budget and amortization plan (Fig. 9 sweep / A1
  /// ablation) without rebuilding the ambient series.
  Status Reconfigure(double savings_fraction,
                     energy::AmortizationKind amortization);

  /// Replaces the total budget (cloud allocation) without rebuilding the
  /// ambient series.
  Status SetBudget(double budget_kwh);

  /// Environment snapshot for one unit at instant `t` (clean weather, no
  /// fault degradation): what a context query observes before the serving
  /// layer applies the tenant's dataflow policy. Requires Prepare(); `t` is
  /// clamped to the simulation span for the ambient series lookup.
  Result<rules::EvaluationContext> ContextAt(SimTime t, int unit) const;

  const rules::MetaRuleTable& mrt() const { return mrt_; }
  const rules::TriggerRuleTable& ifttt() const { return ifttt_; }
  const trace::HourlyAmbient& ambient() const { return *ambient_; }
  const devices::DeviceRegistry& registry() const { return registry_; }
  const energy::AmortizationPlan& amortization() const { return *plan_; }
  double total_budget_kwh() const { return total_budget_; }
  const SimulationOptions& options() const { return options_; }

 private:
  SimulationOptions options_;
  bool prepared_ = false;
  rules::MetaRuleTable mrt_;
  rules::TriggerRuleTable ifttt_;
  devices::DeviceRegistry registry_;
  devices::UnitEnergyModels unit_models_;
  std::unique_ptr<trace::HourlyAmbient> ambient_;
  std::unique_ptr<weather::SyntheticWeather> weather_;
  std::vector<trace::AmbientModel> unit_ambient_models_;
  std::unique_ptr<energy::AmortizationPlan> plan_;
  double total_budget_ = 0.0;
  SimTime start_ = 0;
  int hours_ = 0;
  /// Per-unit device ids, precomputed so the hot loop avoids registry
  /// scans: hvac_ids_[u] / light_ids_[u].
  std::vector<devices::DeviceId> hvac_ids_;
  std::vector<devices::DeviceId> light_ids_;

  Status RebuildPlan();
};

}  // namespace sim
}  // namespace imcf

#endif  // IMCF_SIM_SIMULATION_H_
