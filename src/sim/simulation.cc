#include "sim/simulation.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/slot_problem.h"
#include "core/soa_evaluator.h"
#include "fault/command_bus.h"
#include "fault/fallback_weather.h"
#include "obs/accounting/cost_ledger.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/tracer.h"

namespace imcf {
namespace sim {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Wall latency of one per-slot planning step (also accumulated into the
/// run's F_T total through the ScopedTimer's seconds accumulator).
obs::Histogram* PlanWallNsHist() {
  static obs::Histogram* const hist =
      obs::MetricRegistry::Default().GetHistogram(
          "imcf_planner_plan_wall_ns",
          "Wall time of one per-slot planning step",
          obs::LatencyBoundsNs());
  return hist;
}

/// Dense device-group id for (unit, kind).
int GroupId(int unit, devices::DeviceKind kind) {
  return unit * 2 + (kind == devices::DeviceKind::kLight ? 1 : 0);
}

/// Deterministic trace id for one (policy, rep) grid cell: a pure function
/// of the cell index, so grid traces compare bit-identical at any thread
/// count.
[[maybe_unused]] uint64_t CellTraceId(int cell) {
  constexpr uint64_t kSimTraceSalt = 0x53494d43u;  // "SIMC"
  const uint64_t id = MixHash(kSimTraceSalt, static_cast<uint64_t>(cell));
  return id != 0 ? id : 1;
}

}  // namespace

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kNoRule:
      return "NR";
    case Policy::kIfttt:
      return "IFTTT";
    case Policy::kEnergyPlanner:
      return "EP";
    case Policy::kMetaRule:
      return "MR";
    case Policy::kAnnealer:
      return "SA";
    case Policy::kGenetic:
      return "GA";
  }
  return "?";
}

Simulator::Simulator(SimulationOptions options)
    : options_(std::move(options)) {}

Status Simulator::Prepare() {
  if (prepared_) return Status::Ok();
  const trace::DatasetSpec& spec = options_.spec;
  if (spec.units <= 0) {
    return Status::InvalidArgument("dataset has no units");
  }

  start_ = options_.start != 0 ? options_.start : trace::EvaluationStart();
  hours_ = options_.hours != 0 ? options_.hours : trace::EvaluationHours();
  if (hours_ <= 0) return Status::InvalidArgument("empty simulation span");

  // Rule tables: Table II for the flat, uniform random variations for the
  // replicated datasets; Table III recipes in all cases.
  mrt_ = rules::VariedMrt(spec.units, spec.mrt_variation,
                          MixHash(options_.seed, spec.seed));
  ifttt_ = rules::FlatIfttt();
  for (const rules::TriggerRule& rule : options_.ifttt_extra) {
    ifttt_.Add(rule);
  }

  // Devices: one split unit and one luminaire per building unit.
  for (int u = 0; u < spec.units; ++u) {
    IMCF_ASSIGN_OR_RETURN(devices::DeviceId ac_id,
                          registry_.Add(StrFormat("unit%02d_ac", u),
                                        devices::DeviceKind::kHvac, u,
                                        StrFormat("10.0.%d.1", u)));
    IMCF_ASSIGN_OR_RETURN(devices::DeviceId light_id,
                          registry_.Add(StrFormat("unit%02d_light", u),
                                        devices::DeviceKind::kLight, u,
                                        StrFormat("10.0.%d.2", u)));
    hvac_ids_.push_back(ac_id);
    light_ids_.push_back(light_id);
  }
  unit_models_.hvac = devices::HvacEnergyModel(spec.hvac);
  unit_models_.light = devices::LightEnergyModel(spec.light);

  // Ambient ground truth and weather.
  weather_ = std::make_unique<weather::SyntheticWeather>(spec.climate);
  ambient_ = std::make_unique<trace::HourlyAmbient>(
      trace::BuildHourlyAmbient(spec, start_, hours_));
  unit_ambient_models_.clear();
  for (int u = 0; u < spec.units; ++u) {
    unit_ambient_models_.emplace_back(
        weather_.get(), spec.ambient,
        MixHash(spec.seed, static_cast<uint64_t>(u)));
  }

  IMCF_RETURN_IF_ERROR(RebuildPlan());

  prepared_ = true;
  return Status::Ok();
}

Status Simulator::RebuildPlan() {
  // Budget: Table II limit unless overridden, scaled by the Fig. 9 savings
  // knob, amortized per the configured formula.
  const double base_budget = options_.budget_kwh > 0.0
                                 ? options_.budget_kwh
                                 : options_.spec.budget_kwh;
  total_budget_ = base_budget * (1.0 - options_.savings_fraction);
  energy::AmortizationOptions amort;
  amort.kind = options_.amortization;
  amort.total_budget_kwh = total_budget_;
  amort.period_start = start_;
  amort.period_end = start_ + static_cast<SimTime>(hours_) * kSecondsPerHour;
  amort.balloon_fraction = options_.balloon_fraction;
  amort.balloon_months = options_.balloon_months;
  IMCF_ASSIGN_OR_RETURN(
      energy::AmortizationPlan plan,
      energy::AmortizationPlan::Create(amort, energy::FlatEcp()));
  plan_ = std::make_unique<energy::AmortizationPlan>(std::move(plan));
  return Status::Ok();
}

Status Simulator::SetBudget(double budget_kwh) {
  if (budget_kwh <= 0.0) {
    return Status::InvalidArgument("budget must be positive");
  }
  options_.budget_kwh = budget_kwh;
  return RebuildPlan();
}

Result<rules::EvaluationContext> Simulator::ContextAt(SimTime t,
                                                      int unit) const {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare() before ContextAt()");
  }
  if (unit < 0 || unit >= options_.spec.units) {
    return Status::OutOfRange(StrFormat("unit %d out of range", unit));
  }
  int hour = static_cast<int>((t - start_) / kSecondsPerHour);
  if (hour < 0) hour = 0;
  if (hour >= hours_) hour = hours_ - 1;
  rules::EvaluationContext ctx;
  ctx.time = t;
  ctx.weather = weather_->At(t);
  ctx.ambient_temp_c = ambient_->temp(unit, hour);
  ctx.ambient_light_pct = ambient_->light(unit, hour);
  ctx.door_open =
      unit_ambient_models_[static_cast<size_t>(unit)].DoorOpen(t);
  return ctx;
}

Status Simulator::Reconfigure(double savings_fraction,
                              energy::AmortizationKind amortization) {
  if (savings_fraction < 0.0 || savings_fraction >= 1.0) {
    return Status::OutOfRange("savings fraction must be in [0, 1)");
  }
  options_.savings_fraction = savings_fraction;
  options_.amortization = amortization;
  return RebuildPlan();
}

Result<SimulationReport> Simulator::Run(Policy policy, int rep,
                                        core::PlanArena* arena) const {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare() before Run()");
  }
  // Child of whatever requested this run (a serve.execute/tenant.with span
  // or a sim.cell root); a bare Run() with no ambient context stays
  // untraced and pays only the context probe.
  IMCF_TRACE_SPAN(run_span, "sim.run", "sim");
  run_span.Detail(PolicyName(policy));
  run_span.Arg("rep", rep);
  const trace::DatasetSpec& spec = options_.spec;
  const size_t n_rules = mrt_.convenience_count();
  const int n_groups = spec.units * 2;

  // Planner for this policy.
  std::unique_ptr<core::SlotPlanner> planner;
  switch (policy) {
    case Policy::kNoRule:
      planner = std::make_unique<core::NoRulePlanner>();
      break;
    case Policy::kMetaRule:
      planner = std::make_unique<core::MetaRulePlanner>();
      break;
    case Policy::kEnergyPlanner:
      planner = std::make_unique<core::HillClimbingPlanner>(options_.ep);
      break;
    case Policy::kAnnealer:
      planner = std::make_unique<core::SimulatedAnnealingPlanner>(options_.sa);
      break;
    case Policy::kGenetic:
      planner = std::make_unique<core::GeneticPlanner>(options_.ga);
      break;
    case Policy::kIfttt:
      break;  // handled separately below
  }

  // Evaluator tables are rebuilt per slot from this arena; a run-local one
  // serves solo callers, batched callers lend a longer-lived arena that is
  // already warm.
  core::PlanArena local_arena;
  core::PlanArena* const plan_arena = arena != nullptr ? arena : &local_arena;

#if IMCF_ACCOUNTING_ENABLED
  // Per-tenant cost attribution (no-op unless an ambient ScopedCost is
  // open, i.e. the run is on behalf of a registry tenant). The run's wall
  // time splits into kPlan (the planner_seconds accumulator below — the
  // paper's F_T) and kSim (everything else: scheduling, firewall, ledger);
  // arena traffic is the lifetime-counter delta, which is independent of
  // how runs are batched onto workers.
  const size_t arena_bytes_before = plan_arena->lifetime_allocated_bytes();
  const int64_t run_start_ns = obs::ScopedTimer::NowNs();
#endif

  Rng rng(MixHash(MixHash(options_.seed, static_cast<uint64_t>(rep)),
                  static_cast<uint64_t>(policy)));
  const fault::FaultPlan fault_plan(options_.fault);
  firewall::MetaControlFirewall fw(&registry_, /*audit_capacity=*/256);
  std::unique_ptr<fault::CommandBus> bus;
  if (fault_plan.enabled()) {
    bus = std::make_unique<fault::CommandBus>(&fault_plan, options_.retry,
                                              &registry_);
    fw.set_command_bus(bus.get());
  }
  if (options_.chain_setup) options_.chain_setup(fw.chain());
  const fault::FallbackWeather degraded_weather(weather_.get(), &fault_plan);
  energy::BudgetLedger ledger(plan_.get());

  SimulationReport report;
  report.dataset = spec.name;
  report.policy = PolicyName(policy);
  report.budget_kwh = total_budget_;
  report.slots = hours_;
  run_span.SimSpan(start_,
                   start_ + static_cast<SimTime>(hours_) * kSecondsPerHour);

  double error_sum = 0.0;
  int64_t activations = 0;
  double adopted_fraction_sum = 0.0;
  int64_t slots_with_active = 0;
  double planner_seconds = 0.0;
  double carry = 0.0;
  double co2_g = 0.0;
  const energy::CarbonProfile carbon(options_.carbon);
  std::vector<double> carbon_tilt(24, 1.0);

  // Scratch reused across slots.
  core::SlotProblem problem;
  problem.n_rules = static_cast<int>(n_rules);
  problem.groups.resize(static_cast<size_t>(n_groups));
  std::vector<int> dropped_ids;
  std::vector<char> accepted;  // firewall verdict per active rule
  std::vector<int> necessity_active;
  std::vector<char> necessity_ok;  // firewall verdict per necessity rule
  std::vector<const core::ActiveRule*> winner(static_cast<size_t>(n_groups),
                                              nullptr);
  std::vector<rules::TriggerDecision> decisions(
      static_cast<size_t>(spec.units));

  const int cfg_span = std::max(1, options_.slot_hours);
  for (int h = 0; h < hours_; h += cfg_span) {
    const int span = std::min(cfg_span, hours_ - h);
    const int hm = h + span / 2;  // midpoint hour index: planning view
    const SimTime slot_time = ambient_->TimeOfHour(h);
    const SimTime midpoint =
        slot_time + static_cast<SimTime>(span) * kSecondsPerHour / 2;

    // One span per slot, covering planning, firewall routing and execution
    // accounting; firewall fw.drop events and the planner's ep.search span
    // nest under it.
    IMCF_TRACE_SPAN(slot_span, "plan.slot", "sim");
    slot_span.SimSpan(slot_time,
                      slot_time + static_cast<SimTime>(span) * kSecondsPerHour);
    [[maybe_unused]] const int64_t slot_issued_before =
        report.commands_issued;
    [[maybe_unused]] const int64_t slot_dropped_before =
        report.commands_dropped;

    // Hours of the slot a daily window covers (1 for hourly slots).
    auto overlap_hours = [&](const TimeWindow& window) {
      int overlap = 0;
      for (int hh = h; hh < h + span; ++hh) {
        const SimTime hour_mid =
            ambient_->TimeOfHour(hh) + kSecondsPerHour / 2;
        if (window.ContainsMinute(MinuteOfDay(hour_mid))) ++overlap;
      }
      return overlap;
    };

    // --- Planning view: the slot problem priced at the slot's *mean*
    // ambient conditions. (With hourly slots this IS the ground truth;
    // with coarser slots it is the approximation the granularity trades
    // accuracy for: one adopt/drop decision covers the whole span.)
    problem.active.clear();
    for (size_t g = 0; g < problem.groups.size(); ++g) {
      const int unit = static_cast<int>(g) / 2;
      const bool is_light = (g % 2) == 1;
      double mean_ambient = 0.0;
      for (int hh = h; hh < h + span; ++hh) {
        mean_ambient += is_light ? ambient_->light(unit, hh)
                                 : ambient_->temp(unit, hh);
      }
      problem.groups[g].ambient = mean_ambient / span;
      problem.groups[g].type = is_light ? devices::CommandType::kSetLight
                                        : devices::CommandType::kSetTemperature;
    }
    for (size_t i = 0; i < n_rules; ++i) {
      const rules::MetaRule& rule = mrt_.ConvenienceRule(i);
      const int overlap = overlap_hours(rule.window);
      if (overlap == 0) continue;
      core::ActiveRule active;
      active.rule_index = static_cast<int>(i);
      active.group = GroupId(rule.unit, rule.TargetKind());
      active.desired = rule.value;
      active.type = rule.TargetCommand();
      const double amb =
          problem.groups[static_cast<size_t>(active.group)].ambient;
      active.energy_kwh = unit_models_.CommandEnergyKwh(
          active.type, rule.value, amb, static_cast<double>(overlap));
      // Drop errors weigh by covered hours so a rule active all day
      // outranks one active a single hour.
      active.drop_error =
          core::NormalizedError(active.type, rule.value, amb) * overlap;
      problem.active.push_back(active);
    }

    // Necessity rules: executed by every policy; their estimated load is
    // charged before the planner sees the budget.
    necessity_active.clear();
    problem.base_energy_kwh = 0.0;
    for (int id : mrt_.necessity_ids()) {
      const rules::MetaRule& rule = *mrt_.Get(id).value();
      const int overlap = overlap_hours(rule.window);
      if (overlap == 0) continue;
      const int group = GroupId(rule.unit, rule.TargetKind());
      const double amb =
          problem.groups[static_cast<size_t>(group)].ambient;
      problem.base_energy_kwh += unit_models_.CommandEnergyKwh(
          rule.TargetCommand(), rule.value, amb,
          static_cast<double>(overlap));
      necessity_active.push_back(id);
    }

    // Slot budget: the amortized hourly allocations of the span, optionally
    // tilted toward clean-grid hours.
    double slot_budget = 0.0;
    for (int hh = h; hh < h + span; ++hh) {
      const SimTime hour_mid = ambient_->TimeOfHour(hh) + kSecondsPerHour / 2;
      double hourly = plan_->HourlyBudget(hour_mid);
      if (options_.carbon_alpha > 0.0) {
        const int hour_of_day = MinuteOfDay(hour_mid) / 60;
        if (hour_of_day == 0 || hh == 0) {
          carbon_tilt = energy::CarbonTiltWeights(
              carbon,
              ambient_->TimeOfHour(hh) - hour_of_day * kSecondsPerHour,
              options_.carbon_alpha);
        }
        hourly *= carbon_tilt[static_cast<size_t>(hour_of_day)];
      }
      slot_budget += hourly;
    }
    problem.budget_kwh =
        options_.carryover ? slot_budget + carry : slot_budget;
    // The arena reset frees the previous slot's tables in place; after the
    // first slot, evaluator construction allocates nothing.
    plan_arena->Reset();
    const std::unique_ptr<core::Evaluator> evaluator_ptr =
        core::MakeSlotEvaluator(&problem, plan_arena);
    const core::Evaluator& evaluator = *evaluator_ptr;

    // --- Decision: plan (or evaluate recipes) and route commands through
    // the firewall.
    accepted.assign(problem.active.size(), 0);
    if (policy == Policy::kIfttt) {
      {
        obs::ScopedTimer plan_span(PlanWallNsHist(), &planner_seconds);
        for (int u = 0; u < spec.units; ++u) {
          rules::EvaluationContext ctx;
          ctx.time = midpoint;
          ctx.weather = degraded_weather.At(midpoint);
          ctx.ambient_temp_c = ambient_->temp(u, hm);
          ctx.ambient_light_pct = ambient_->light(u, hm);
          ctx.door_open =
              unit_ambient_models_[static_cast<size_t>(u)].DoorOpen(midpoint);
          decisions[static_cast<size_t>(u)] =
              ifttt_.Evaluate(ctx, options_.ifttt_policy);
        }
      }
      for (int u = 0; u < spec.units; ++u) {
        const rules::TriggerDecision& d = decisions[static_cast<size_t>(u)];
        if (d.temperature) {
          devices::ActuationCommand cmd;
          cmd.device = hvac_ids_[static_cast<size_t>(u)];
          cmd.type = devices::CommandType::kSetTemperature;
          cmd.value = *d.temperature;
          cmd.time = slot_time;
          cmd.source = "ifttt";
          ++report.commands_issued;
          const firewall::Decision decision = fw.Filter(cmd);
          if (decision.verdict == firewall::Verdict::kDrop) {
            ++report.commands_dropped;
            if (decision.reason ==
                firewall::DecisionReason::kDeviceUnavailable) {
              ++report.commands_failed;
            }
            decisions[static_cast<size_t>(u)].temperature.reset();
          }
        }
        if (d.light) {
          devices::ActuationCommand cmd;
          cmd.device = light_ids_[static_cast<size_t>(u)];
          cmd.type = devices::CommandType::kSetLight;
          cmd.value = *d.light;
          cmd.time = slot_time;
          cmd.source = "ifttt";
          ++report.commands_issued;
          const firewall::Decision decision = fw.Filter(cmd);
          if (decision.verdict == firewall::Verdict::kDrop) {
            ++report.commands_dropped;
            if (decision.reason ==
                firewall::DecisionReason::kDeviceUnavailable) {
              ++report.commands_failed;
            }
            decisions[static_cast<size_t>(u)].light.reset();
          }
        }
      }
      if (!problem.active.empty()) {
        ++slots_with_active;
        adopted_fraction_sum += 1.0;  // IFTTT executes regardless of the MRT
      }
    } else {
      core::PlanOutcome outcome;
      {
        obs::ScopedTimer plan_span(PlanWallNsHist(), &planner_seconds);
        outcome = planner->PlanSlot(evaluator, &rng);
      }

      dropped_ids.clear();
      for (const core::ActiveRule& active : problem.active) {
        if (!outcome.solution.adopted(
                static_cast<size_t>(active.rule_index))) {
          dropped_ids.push_back(
              mrt_.convenience_ids()[static_cast<size_t>(active.rule_index)]);
        }
      }
      fw.SetDroppedRules(dropped_ids);

      // One command per active rule; the firewall enforces the plan.
      size_t adopted_active = 0;
      for (size_t a = 0; a < problem.active.size(); ++a) {
        const core::ActiveRule& active = problem.active[a];
        const rules::MetaRule& rule =
            mrt_.ConvenienceRule(static_cast<size_t>(active.rule_index));
        devices::ActuationCommand cmd;
        cmd.device = rule.TargetKind() == devices::DeviceKind::kHvac
                         ? hvac_ids_[static_cast<size_t>(rule.unit)]
                         : light_ids_[static_cast<size_t>(rule.unit)];
        cmd.type = active.type;
        cmd.value = active.desired;
        cmd.rule_id = rule.id;
        cmd.time = slot_time;
        cmd.source = "mrt";
        ++report.commands_issued;
        const firewall::Decision decision = fw.Filter(cmd);
        if (decision.verdict == firewall::Verdict::kDrop) {
          ++report.commands_dropped;
          if (decision.reason ==
              firewall::DecisionReason::kDeviceUnavailable) {
            ++report.commands_failed;
          }
        } else {
          accepted[a] = 1;
        }
        if (outcome.solution.adopted(
                static_cast<size_t>(active.rule_index))) {
          ++adopted_active;
        }
      }
      if (!problem.active.empty()) {
        ++slots_with_active;
        adopted_fraction_sum += static_cast<double>(adopted_active) /
                                static_cast<double>(problem.active.size());
      }
    }

    // Necessity commands, once per slot; only an admin chain rule (or an
    // unavailable device) can block them — and a blocked one must not be
    // charged as if it actuated.
    necessity_ok.assign(necessity_active.size(), 0);
    for (size_t ni = 0; ni < necessity_active.size(); ++ni) {
      const rules::MetaRule& rule = *mrt_.Get(necessity_active[ni]).value();
      devices::ActuationCommand cmd;
      cmd.device = rule.TargetKind() == devices::DeviceKind::kHvac
                       ? hvac_ids_[static_cast<size_t>(rule.unit)]
                       : light_ids_[static_cast<size_t>(rule.unit)];
      cmd.type = rule.TargetCommand();
      cmd.value = rule.value;
      cmd.rule_id = rule.id;
      cmd.time = slot_time;
      cmd.source = "mrt-necessity";
      ++report.commands_issued;
      const firewall::Decision decision = fw.Filter(cmd);
      if (decision.verdict == firewall::Verdict::kDrop) {
        ++report.commands_dropped;
        if (decision.reason ==
            firewall::DecisionReason::kDeviceUnavailable) {
          ++report.commands_failed;
        }
      } else {
        necessity_ok[ni] = 1;
      }
    }

    // Per-slot firewall verdict summary on the slot span (the per-drop
    // reasons are the fw.drop child events).
    slot_span.Arg("cmd_issued", report.commands_issued - slot_issued_before);
    slot_span.Arg("cmd_dropped",
                  report.commands_dropped - slot_dropped_before);

    // --- Execution and accounting, hour by hour against ground truth.
    // With hourly slots this coincides with the planning view; with
    // coarser slots it measures what the coarse plan actually causes.
    double slot_energy = 0.0;
    for (int hh = h; hh < h + span; ++hh) {
      const SimTime hour_mid = ambient_->TimeOfHour(hh) + kSecondsPerHour / 2;
      const int hour_minute = MinuteOfDay(hour_mid);
      double hour_energy = 0.0;

      std::fill(winner.begin(), winner.end(), nullptr);
      for (size_t a = 0; a < problem.active.size(); ++a) {
        const core::ActiveRule& active = problem.active[a];
        const rules::MetaRule& rule =
            mrt_.ConvenienceRule(static_cast<size_t>(active.rule_index));
        if (!rule.window.ContainsMinute(hour_minute)) continue;
        bool executes;
        if (policy == Policy::kIfttt) {
          executes = false;  // IFTTT actuation handled per unit below
        } else {
          executes = accepted[a] != 0;
        }
        if (executes) {
          const core::ActiveRule*& w =
              winner[static_cast<size_t>(active.group)];
          if (w == nullptr || active.rule_index > w->rule_index) w = &active;
        }
      }

      if (policy == Policy::kIfttt) {
        // IFTTT holds its decision for the whole slot on every unit.
        for (int u = 0; u < spec.units; ++u) {
          const rules::TriggerDecision& d =
              decisions[static_cast<size_t>(u)];
          if (d.temperature) {
            hour_energy += unit_models_.CommandEnergyKwh(
                devices::CommandType::kSetTemperature, *d.temperature,
                ambient_->temp(u, hh), 1.0);
          }
          if (d.light) {
            hour_energy += unit_models_.CommandEnergyKwh(
                devices::CommandType::kSetLight, *d.light,
                ambient_->light(u, hh), 1.0);
          }
        }
      } else {
        for (int g = 0; g < n_groups; ++g) {
          const core::ActiveRule* w = winner[static_cast<size_t>(g)];
          if (w == nullptr) continue;
          const int unit = g / 2;
          const double amb = (g % 2) == 1 ? ambient_->light(unit, hh)
                                          : ambient_->temp(unit, hh);
          hour_energy +=
              unit_models_.CommandEnergyKwh(w->type, w->desired, amb, 1.0);
        }
      }

      // Convenience error vs what the devices actually hold this hour.
      for (size_t a = 0; a < problem.active.size(); ++a) {
        const core::ActiveRule& active = problem.active[a];
        const rules::MetaRule& rule =
            mrt_.ConvenienceRule(static_cast<size_t>(active.rule_index));
        if (!rule.window.ContainsMinute(hour_minute)) continue;
        const int unit = active.group / 2;
        const double amb = (active.group % 2) == 1
                               ? ambient_->light(unit, hh)
                               : ambient_->temp(unit, hh);
        double actual = amb;
        if (policy == Policy::kIfttt) {
          const rules::TriggerDecision& d =
              decisions[static_cast<size_t>(unit)];
          const std::optional<double>& setpoint =
              active.type == devices::CommandType::kSetTemperature
                  ? d.temperature
                  : d.light;
          if (setpoint) actual = *setpoint;
        } else {
          const core::ActiveRule* w =
              winner[static_cast<size_t>(active.group)];
          if (w != nullptr) actual = w->desired;
        }
        error_sum += core::NormalizedError(active.type, active.desired,
                                           actual);
        ++activations;
      }

      // Necessity rules: when their command went through they hold the
      // setpoint (zero error); when the firewall/bus blocked it the device
      // never moved, so no energy is charged and the full ambient gap
      // counts as convenience error.
      for (size_t ni = 0; ni < necessity_active.size(); ++ni) {
        const rules::MetaRule& rule =
            *mrt_.Get(necessity_active[ni]).value();
        if (!rule.window.ContainsMinute(hour_minute)) continue;
        const int unit = rule.unit;
        const double amb =
            rule.TargetKind() == devices::DeviceKind::kLight
                ? ambient_->light(unit, hh)
                : ambient_->temp(unit, hh);
        if (necessity_ok[ni] != 0) {
          hour_energy += unit_models_.CommandEnergyKwh(
              rule.TargetCommand(), rule.value, amb, 1.0);
        } else {
          error_sum += core::NormalizedError(rule.TargetCommand(),
                                             rule.value, amb);
        }
        ++activations;
      }

      ledger.Charge(hour_mid, hour_energy);
      co2_g += hour_energy * carbon.IntensityAt(hour_mid);
      slot_energy += hour_energy;
    }

    if (options_.carryover) {
      carry += slot_budget - slot_energy;
      if (carry < 0.0) carry = 0.0;
      if (options_.carryover_cap_hours > 0.0) {
        const double cap =
            options_.carryover_cap_hours * slot_budget / span;
        if (carry > cap) carry = cap;
      }
    }
  }

  report.fe_kwh = ledger.TotalConsumedKwh();
  report.fce_pct =
      activations > 0 ? 100.0 * error_sum / static_cast<double>(activations)
                      : 0.0;
  report.ft_seconds = planner_seconds;
  report.activations = activations;
  report.within_budget = report.fe_kwh <= total_budget_ + 1e-6;
  report.mean_adopted_fraction =
      slots_with_active > 0
          ? adopted_fraction_sum / static_cast<double>(slots_with_active)
          : 0.0;
  report.co2_kg = co2_g / 1000.0;

#if IMCF_ACCOUNTING_ENABLED
  const int64_t run_ns = obs::ScopedTimer::NowNs() - run_start_ns;
  const int64_t plan_ns = static_cast<int64_t>(planner_seconds * 1e9);
  IMCF_COST_ADD_PHASE_NS(obs::CostPhase::kPlan, plan_ns);
  IMCF_COST_ADD_PHASE_NS(obs::CostPhase::kSim,
                         std::max<int64_t>(0, run_ns - plan_ns));
  IMCF_COST_ADD_ARENA_BYTES(static_cast<int64_t>(
      plan_arena->lifetime_allocated_bytes() - arena_bytes_before));
#endif
  return report;
}

Result<RepeatedReport> Simulator::RunRepeated(Policy policy, int repetitions,
                                              int threads) const {
  IMCF_ASSIGN_OR_RETURN(std::vector<RepeatedReport> grid,
                        RunGrid({policy}, repetitions, threads));
  return std::move(grid[0]);
}

Result<std::vector<RepeatedReport>> Simulator::RunGrid(
    const std::vector<Policy>& policies, int repetitions, int threads) const {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare() before RunGrid()");
  }
  if (threads == 0) threads = options_.threads;

  // Fan the (policy, repetition) grid out as independent work items. Each
  // item derives its random streams from its own (policy, rep) coordinates
  // — never from a shared generator — and writes only to its own slot, so
  // the grid is bit-identical for every thread count (including the inline
  // threads==1 path of ParallelFor).
  const int n_cells = static_cast<int>(policies.size()) * repetitions;
  std::vector<std::optional<Result<SimulationReport>>> cells(
      static_cast<size_t>(n_cells));
  auto& reg = obs::MetricRegistry::Default();
  static obs::Histogram* const cell_seconds = reg.GetHistogram(
      "imcf_sim_cell_seconds",
      "Wall time of one (policy, repetition) simulation cell",
      obs::DurationBoundsSeconds());
  static obs::Counter* const cells_total = reg.GetCounter(
      "imcf_sim_cells_total", "Simulation grid cells executed");
  ParallelFor(threads, n_cells, [this, &policies, repetitions, &cells](int i) {
    const Policy policy = policies[static_cast<size_t>(i / repetitions)];
    const int rep = i % repetitions;
    // Each grid cell is a trace root with an id derived from its index, so
    // cell span trees replay identically at any thread count.
    IMCF_TRACE_SPAN_IN(cell_span, "sim.cell", "sim",
                       obs::Tracer::Root(CellTraceId(i)));
    cell_span.Arg("cell", i);
    const auto t0 = Clock::now();
    cells[static_cast<size_t>(i)].emplace(Run(policy, rep));
    cell_seconds->Observe(SecondsSince(t0));
    cells_total->Increment();
  });

  // Aggregate in (policy, rep) order regardless of completion order. Each
  // cell contributes a single-sample RunningStat merged via Merge() — the
  // same parallel-merge formula the bench fan-out uses — so the aggregate
  // is a pure function of the rep-ordered cell values for any thread count.
  std::vector<RepeatedReport> out;
  out.reserve(policies.size());
  for (size_t p = 0; p < policies.size(); ++p) {
    RepeatedReport agg;
    agg.dataset = options_.spec.name;
    agg.policy = PolicyName(policies[p]);
    for (int rep = 0; rep < repetitions; ++rep) {
      Result<SimulationReport>& cell =
          *cells[p * static_cast<size_t>(repetitions) +
                 static_cast<size_t>(rep)];
      IMCF_RETURN_IF_ERROR(cell.status());
      const SimulationReport& report = *cell;
      RunningStat fce, fe, ft, co2;
      fce.Add(report.fce_pct);
      fe.Add(report.fe_kwh);
      ft.Add(report.ft_seconds);
      co2.Add(report.co2_kg);
      agg.fce_pct.Merge(fce);
      agg.fe_kwh.Merge(fe);
      agg.ft_seconds.Merge(ft);
      agg.co2_kg.Merge(co2);
    }
    out.push_back(std::move(agg));
  }
  return out;
}

}  // namespace sim
}  // namespace imcf
