// Residents: per-user preference profiles for the multi-user prototype.
//
// In the paper's prototype study "each individual resident entered
// approximately three different meta-rules according to their personal
// preferences. One of them [set] the weekly energy consumption limit to
// 165 kWh" — resulting in "configuration data of approximately 65 bytes /
// user stored in the MariaDB persistency layer". This module models the
// residents, merges their rules into one MRT (tagged by user for Table V's
// per-resident convenience attribution) and persists the configuration in
// the table store.

#ifndef IMCF_CONTROLLER_RESIDENT_H_
#define IMCF_CONTROLLER_RESIDENT_H_

#include <string>
#include <vector>

#include "rules/meta_rule.h"
#include "storage/table_store.h"

namespace imcf {
namespace controller {

/// One household member and their preferences.
struct Resident {
  std::string name;
  std::vector<rules::MetaRule> rules;
};

/// The three-person family of the prototype evaluation (§III-F): each
/// resident owns one room unit (0..2) and about three preferences.
std::vector<Resident> DefaultFamily();

/// Merges resident rules into one MRT, tagging each rule with its owner.
Result<rules::MetaRuleTable> MergeResidents(
    const std::vector<Resident>& residents);

/// Schema of the table persisting resident configurations.
TableSchema ResidentRuleSchema();

/// Writes every resident rule into `table` (one row per rule). Returns the
/// average serialized bytes per resident (the paper's ~65 bytes/user
/// footprint metric).
Result<double> PersistResidents(const std::vector<Resident>& residents,
                                Table* table);

/// Reloads residents from a persisted table.
Result<std::vector<Resident>> LoadResidents(const Table& table);

}  // namespace controller
}  // namespace imcf

#endif  // IMCF_CONTROLLER_RESIDENT_H_
