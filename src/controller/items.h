// openHAB-style item registry.
//
// The paper's Local Controller extends openHAB, where every device channel
// is surfaced as an *Item* (e.g. `Number:Temperature DaikinACUnit_SetPoint`
// bound to `daikin:ac_unit:living_room_ac:settemp`). The IMCF GUI "records
// OpenHAB item measurements/values on local storage and presents those on a
// table". This module reproduces that layer: typed items bound to device
// channels, state updates from accepted actuation commands and sensor
// readings, and export to the table store.

#ifndef IMCF_CONTROLLER_ITEMS_H_
#define IMCF_CONTROLLER_ITEMS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "devices/device.h"

namespace imcf {
namespace controller {

/// Item families, mirroring openHAB's type system subset IMCF uses.
enum class ItemType : uint8_t {
  kNumber = 0,   ///< sensor measurements (temperature, light level)
  kSwitch = 1,   ///< on/off state
  kDimmer = 2,   ///< 0-100 level
  kSetpoint = 3, ///< numeric target bound to an actuator channel
};

const char* ItemTypeName(ItemType type);

/// One item: a named, typed state cell, optionally bound to a device
/// channel ("<thing>:<channel>").
struct Item {
  std::string name;            ///< e.g. "Unit00AC_SetPoint"
  ItemType type = ItemType::kNumber;
  std::string channel;         ///< e.g. "hvac:unit00_ac:settemp"
  std::optional<devices::DeviceId> device;
  double state = 0.0;
  SimTime updated_at = 0;
};

/// Registry of items with device-channel bindings.
class ItemRegistry {
 public:
  /// Adds an item; names must be unique.
  Status Add(Item item);

  /// Creates the standard item set for every device in `registry`:
  /// a setpoint + switch per actuator, a number per sensor channel.
  Status BindDevices(const devices::DeviceRegistry& registry);

  Result<const Item*> Get(const std::string& name) const;

  /// Updates an item's state (e.g. from a sensor reading or an accepted
  /// command).
  Status Update(const std::string& name, double state, SimTime now);

  /// Applies an accepted actuation command to the bound setpoint/switch
  /// items of the target device.
  Status ApplyCommand(const devices::ActuationCommand& command);

  const std::vector<Item>& items() const { return items_; }
  size_t size() const { return items_.size(); }

 private:
  int IndexOf(const std::string& name) const;

  std::vector<Item> items_;
};

}  // namespace controller
}  // namespace imcf

#endif  // IMCF_CONTROLLER_ITEMS_H_
