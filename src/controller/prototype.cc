#include "controller/prototype.h"

#include <chrono>
#include <map>
#include <memory>

#include "common/strings.h"
#include "controller/items.h"
#include "controller/scheduler.h"
#include "core/evaluator.h"
#include "core/slot_problem.h"
#include "core/soa_evaluator.h"
#include "devices/energy_model.h"
#include "energy/budget.h"
#include "fault/command_bus.h"
#include "fault/fallback_weather.h"
#include "firewall/imcf_firewall.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "trace/dataset.h"
#include "weather/weather.h"

namespace imcf {
namespace controller {

namespace {

using Clock = std::chrono::steady_clock;

/// The family home: three room units with larger split units and lighting
/// circuits than the House dataset's small zones (the prototype home is a
/// regular three-room residence).
trace::DatasetSpec FamilyHomeSpec() {
  trace::DatasetSpec spec = trace::HouseSpec();
  spec.name = "family-home";
  spec.units = 3;
  spec.seed = 77;
  spec.hvac.kw_per_degree = 0.09;
  spec.hvac.fan_kw = 0.07;
  spec.hvac.deadband_c = 2.0;
  spec.light.max_power_kw = 0.60;
  return spec;
}

/// Net-metering bank depth for the weekly cap: surplus beyond a few hours
/// of budget is not banked, so evening peaks are genuinely rationed.
constexpr double kCarryCapHours = 4.0;

}  // namespace

PrototypeStudy::PrototypeStudy(PrototypeOptions options)
    : options_(std::move(options)) {}

Result<PrototypeReport> PrototypeStudy::Run(
    const std::vector<Resident>& residents) {
  if (residents.empty()) {
    return Status::InvalidArgument("prototype needs at least one resident");
  }
  const trace::DatasetSpec spec = FamilyHomeSpec();
  const SimTime start = options_.week_start != 0
                            ? options_.week_start
                            : FromCivil(2016, 2, 15);  // a late-winter week
  const SimTime end = start + 7 * kSecondsPerDay;

  // Rule configuration, persisted like the prototype's MariaDB layer.
  IMCF_ASSIGN_OR_RETURN(rules::MetaRuleTable mrt, MergeResidents(residents));
  PrototypeReport report;
  std::unique_ptr<TableStore> store;
  if (!options_.store_dir.empty()) {
    IMCF_ASSIGN_OR_RETURN(store, TableStore::Open(options_.store_dir));
    IMCF_ASSIGN_OR_RETURN(Table * rules_table,
                          store->OpenOrCreateTable(ResidentRuleSchema()));
    IMCF_RETURN_IF_ERROR(rules_table->Truncate());
    IMCF_ASSIGN_OR_RETURN(report.config_bytes_per_user,
                          PersistResidents(residents, rules_table));
  } else {
    // Still measure the serialized footprint without touching disk.
    const TableSchema schema = ResidentRuleSchema();
    int64_t bytes = 0;
    for (const Resident& r : residents) {
      for (const rules::MetaRule& rule : r.rules) {
        Row row{r.name,
                rule.description,
                static_cast<int64_t>(rule.window.start_minute),
                static_cast<int64_t>(rule.window.end_minute),
                static_cast<int64_t>(rule.action),
                rule.value,
                static_cast<int64_t>(rule.unit)};
        bytes += static_cast<int64_t>(EncodeRow(schema, row).size());
      }
    }
    report.config_bytes_per_user =
        static_cast<double>(bytes) / static_cast<double>(residents.size());
  }

  // Devices, items, environment.
  devices::DeviceRegistry registry;
  std::vector<devices::DeviceId> hvac_ids, light_ids;
  for (int u = 0; u < spec.units; ++u) {
    IMCF_ASSIGN_OR_RETURN(devices::DeviceId ac,
                          registry.Add(StrFormat("room%d_ac", u),
                                       devices::DeviceKind::kHvac, u,
                                       StrFormat("192.168.1.%d", 10 + u)));
    IMCF_ASSIGN_OR_RETURN(devices::DeviceId li,
                          registry.Add(StrFormat("room%d_light", u),
                                       devices::DeviceKind::kLight, u,
                                       StrFormat("192.168.1.%d", 20 + u)));
    hvac_ids.push_back(ac);
    light_ids.push_back(li);
  }
  ItemRegistry items;
  IMCF_RETURN_IF_ERROR(items.BindDevices(registry));

  weather::SyntheticWeather weather(spec.climate);
  const fault::FaultPlan fault_plan(options_.fault);
  // The prototype reads "data from the open weather API" — a link the
  // fault plan can take down; sensor models then see last-known weather.
  const fault::FallbackWeather degraded_weather(&weather, &fault_plan);
  std::vector<trace::AmbientModel> ambient;
  for (int u = 0; u < spec.units; ++u) {
    ambient.emplace_back(&degraded_weather, spec.ambient,
                         MixHash(spec.seed, static_cast<uint64_t>(u)));
  }
  devices::UnitEnergyModels models;
  models.hvac = devices::HvacEnergyModel(spec.hvac);
  models.light = devices::LightEnergyModel(spec.light);

  // Weekly budget, linearly amortized (the family set a weekly cap).
  energy::AmortizationOptions amort;
  amort.kind = energy::AmortizationKind::kLaf;
  amort.total_budget_kwh = options_.weekly_budget_kwh;
  amort.period_start = start;
  amort.period_end = end;
  IMCF_ASSIGN_OR_RETURN(
      energy::AmortizationPlan plan,
      energy::AmortizationPlan::Create(amort, energy::FlatEcp()));
  energy::BudgetLedger ledger(&plan);

  firewall::MetaControlFirewall fw(&registry, /*audit_capacity=*/512);
  std::unique_ptr<fault::CommandBus> bus;
  if (fault_plan.enabled()) {
    bus = std::make_unique<fault::CommandBus>(&fault_plan, options_.retry,
                                              &registry);
    fw.set_command_bus(bus.get());
  }
  core::HillClimbingPlanner planner(options_.ep);
  Rng rng(options_.seed);
  // Reused across cron invocations: after the first plan the evaluator
  // tables are carved from retained arena blocks.
  core::PlanArena plan_arena;

  // Per-resident error accounting (Table V).
  std::map<std::string, ResidentReport> per_user;
  for (const Resident& r : residents) per_user[r.name].name = r.name;

  double error_sum = 0.0;
  int64_t activations = 0;
  double carry = 0.0;
  const size_t n_rules = mrt.convenience_count();

  VirtualScheduler scheduler(start);

  // Job 1: sensor refresh every 15 minutes (items mirror the environment).
  IMCF_RETURN_IF_ERROR(scheduler.Schedule(
      "sensor-refresh", "*/15 * * * *", [&](SimTime now) {
        ++report.sensor_refreshes;
        for (int u = 0; u < spec.units; ++u) {
          (void)items.Update(StrFormat("room%d_ac_SetPoint", u),
                             ambient[static_cast<size_t>(u)].IndoorTempC(now),
                             now);
        }
      }));

  // Job 2: the Energy Planner, run by cron at the top of every hour.
  IMCF_RETURN_IF_ERROR(scheduler.Schedule(
      "energy-planner", "0 * * * *", [&](SimTime now) {
        ++report.planner_runs;
        const SimTime midpoint = now + kSecondsPerHour / 2;
        const int minute = MinuteOfDay(midpoint);

        core::SlotProblem problem;
        problem.n_rules = static_cast<int>(n_rules);
        problem.groups.resize(static_cast<size_t>(spec.units) * 2);
        for (int u = 0; u < spec.units; ++u) {
          problem.groups[static_cast<size_t>(u) * 2].ambient =
              ambient[static_cast<size_t>(u)].IndoorTempC(midpoint);
          problem.groups[static_cast<size_t>(u) * 2].type =
              devices::CommandType::kSetTemperature;
          problem.groups[static_cast<size_t>(u) * 2 + 1].ambient =
              ambient[static_cast<size_t>(u)].IndoorLightPct(midpoint);
          problem.groups[static_cast<size_t>(u) * 2 + 1].type =
              devices::CommandType::kSetLight;
        }
        for (size_t i = 0; i < n_rules; ++i) {
          const rules::MetaRule& rule = mrt.ConvenienceRule(i);
          if (!rule.window.ContainsMinute(minute)) continue;
          core::ActiveRule active;
          active.rule_index = static_cast<int>(i);
          active.group =
              rule.unit * 2 +
              (rule.TargetKind() == devices::DeviceKind::kLight ? 1 : 0);
          active.desired = rule.value;
          active.type = rule.TargetCommand();
          const double amb =
              problem.groups[static_cast<size_t>(active.group)].ambient;
          active.energy_kwh =
              models.CommandEnergyKwh(active.type, rule.value, amb, 1.0);
          active.drop_error =
              core::NormalizedError(active.type, rule.value, amb);
          problem.active.push_back(active);
        }
        const double hourly = plan.HourlyBudget(midpoint);
        problem.budget_kwh = hourly + carry;
        plan_arena.Reset();
        const std::unique_ptr<core::Evaluator> evaluator =
            core::MakeSlotEvaluator(&problem, &plan_arena);

        static obs::Histogram* const plan_ns =
            obs::MetricRegistry::Default().GetHistogram(
                "imcf_prototype_plan_wall_ns",
                "Wall time of one prototype EP cron invocation",
                obs::LatencyBoundsNs());
        core::PlanOutcome outcome;
        {
          obs::ScopedTimer plan_span(plan_ns, &report.ft_seconds);
          outcome = planner.PlanSlot(*evaluator, &rng);
        }

        // Install firewall verdicts and route the commands.
        std::vector<int> dropped;
        for (const core::ActiveRule& active : problem.active) {
          if (!outcome.solution.adopted(
                  static_cast<size_t>(active.rule_index))) {
            dropped.push_back(
                mrt.convenience_ids()[static_cast<size_t>(active.rule_index)]);
          }
        }
        fw.SetDroppedRules(dropped);

        std::vector<const core::ActiveRule*> winner(
            static_cast<size_t>(spec.units) * 2, nullptr);
        for (const core::ActiveRule& active : problem.active) {
          const rules::MetaRule& rule =
              mrt.ConvenienceRule(static_cast<size_t>(active.rule_index));
          devices::ActuationCommand cmd;
          cmd.device = rule.TargetKind() == devices::DeviceKind::kHvac
                           ? hvac_ids[static_cast<size_t>(rule.unit)]
                           : light_ids[static_cast<size_t>(rule.unit)];
          cmd.type = active.type;
          cmd.value = active.desired;
          cmd.rule_id = rule.id;
          cmd.time = now;
          cmd.source = "mrt";
          ++report.commands_issued;
          const firewall::Decision decision = fw.Filter(cmd);
          if (decision.verdict == firewall::Verdict::kDrop) {
            ++report.commands_dropped;
            if (decision.reason ==
                firewall::DecisionReason::kDeviceUnavailable) {
              ++report.commands_failed;
            }
            continue;
          }
          (void)items.ApplyCommand(cmd);
          const core::ActiveRule*& w =
              winner[static_cast<size_t>(active.group)];
          if (w == nullptr || active.rule_index > w->rule_index) w = &active;
        }
        double slot_energy = 0.0;
        for (const auto* w : winner) {
          if (w != nullptr) slot_energy += w->energy_kwh;
        }
        for (const core::ActiveRule& active : problem.active) {
          const core::ActiveRule* w =
              winner[static_cast<size_t>(active.group)];
          double err;
          if (w == nullptr) {
            err = active.drop_error;
          } else if (w == &active) {
            err = 0.0;
          } else {
            err = core::NormalizedError(active.type, active.desired,
                                        w->desired);
          }
          error_sum += err;
          ++activations;
          const rules::MetaRule& rule =
              mrt.ConvenienceRule(static_cast<size_t>(active.rule_index));
          ResidentReport& rr = per_user[rule.user];
          rr.fce_pct += err;  // accumulated; normalised below
          ++rr.activations;
        }
        ledger.Charge(midpoint, slot_energy);
        carry += hourly - slot_energy;
        if (carry < 0.0) carry = 0.0;
        if (carry > kCarryCapHours * hourly) carry = kCarryCapHours * hourly;
      }));

  scheduler.AdvanceTo(end);

  report.fe_kwh = ledger.TotalConsumedKwh();
  report.fce_pct = activations > 0
                       ? 100.0 * error_sum / static_cast<double>(activations)
                       : 0.0;
  report.budget_kwh = options_.weekly_budget_kwh;
  report.within_budget = report.fe_kwh <= report.budget_kwh + 1e-6;
  for (auto& [name, rr] : per_user) {
    rr.fce_pct = rr.activations > 0
                     ? 100.0 * rr.fce_pct /
                           static_cast<double>(rr.activations)
                     : 0.0;
    report.residents.push_back(rr);
  }
  return report;
}

}  // namespace controller
}  // namespace imcf
