// Prototype study: the live Local-Controller deployment of §III-F.
//
// "We deployed an instance of our real prototype system for a family of
// three persons for one week. ... each individual resident entered
// approximately three different meta-rules ... One of them [set] the weekly
// energy consumption (kWh) limit to 165kWh. ... we use data from the open
// weather API."
//
// This module reproduces that deployment end-to-end on virtual time: the
// resident configuration is persisted in the table store (the MariaDB
// stand-in), a cron job runs the Energy Planner every hour, sensor items
// refresh every 15 minutes, commands flow through the meta-control
// firewall, and the report carries Table IV (weekly F_E / F_CE) plus
// Table V (per-resident F_CE).

#ifndef IMCF_CONTROLLER_PROTOTYPE_H_
#define IMCF_CONTROLLER_PROTOTYPE_H_

#include <string>
#include <vector>

#include "core/hill_climber.h"
#include "controller/resident.h"
#include "energy/amortization.h"
#include "fault/fault_plan.h"
#include "fault/retry.h"
#include "trace/ambient.h"

namespace imcf {
namespace controller {

/// Prototype deployment parameters.
struct PrototypeOptions {
  SimTime week_start = 0;         ///< 0 selects the default autumn week
  double weekly_budget_kwh = 165; ///< the family's configured limit
  core::EpOptions ep;             ///< planner configuration
  /// Fault injection on the LAN command path and the weather link.
  /// Disabled by default (the healthy deployment of §III-F).
  fault::FaultOptions fault;
  /// Retry/backoff for command delivery when faults are enabled.
  fault::RetryPolicy retry;
  uint64_t seed = 21;
  std::string store_dir;          ///< persistence dir; empty = in-memory only
};

/// Per-resident outcome (Table V row).
struct ResidentReport {
  std::string name;
  double fce_pct = 0.0;
  int64_t activations = 0;
};

/// Whole-week outcome (Table IV plus pipeline counters).
struct PrototypeReport {
  double fe_kwh = 0.0;           ///< weekly energy consumption
  double fce_pct = 0.0;          ///< average convenience error
  double ft_seconds = 0.0;       ///< planner CPU time over the week
  double budget_kwh = 0.0;
  bool within_budget = false;
  int planner_runs = 0;          ///< cron firings of the EP
  int sensor_refreshes = 0;      ///< cron firings of the item-update job
  int64_t commands_issued = 0;
  int64_t commands_dropped = 0;
  /// Commands the plan accepted but the bus could not deliver.
  int64_t commands_failed = 0;
  double config_bytes_per_user = 0.0;  ///< persisted footprint (~65 B/user)
  std::vector<ResidentReport> residents;  ///< Table V
};

/// The runnable study.
class PrototypeStudy {
 public:
  explicit PrototypeStudy(PrototypeOptions options);

  /// Runs the week for the given family (DefaultFamily() by default).
  Result<PrototypeReport> Run(const std::vector<Resident>& residents);
  Result<PrototypeReport> Run() { return Run(DefaultFamily()); }

 private:
  PrototypeOptions options_;
};

}  // namespace controller
}  // namespace imcf

#endif  // IMCF_CONTROLLER_PROTOTYPE_H_
