#include "controller/resident.h"

#include <map>

#include "storage/coding.h"

namespace imcf {
namespace controller {

namespace {

rules::MetaRule MakeRule(const char* description, int start_h, int end_h,
                         rules::RuleAction action, double value, int unit,
                         const char* user) {
  rules::MetaRule rule;
  rule.description = description;
  rule.window = TimeWindow{start_h * 60, end_h * 60};
  rule.action = action;
  rule.value = value;
  rule.unit = unit;
  rule.user = user;
  return rule;
}

}  // namespace

std::vector<Resident> DefaultFamily() {
  using rules::RuleAction;
  std::vector<Resident> family;

  Resident father;
  father.name = "Father";
  father.rules = {
      MakeRule("Office Day Heat", 9, 16, RuleAction::kSetTemperature, 22.0,
               0, "Father"),
      MakeRule("Evening Warmth", 18, 23, RuleAction::kSetTemperature, 23.0,
               0, "Father"),
      MakeRule("Reading Light", 19, 23, RuleAction::kSetLight, 40.0, 0,
               "Father"),
  };
  family.push_back(std::move(father));

  Resident mother;
  mother.name = "Mother";
  mother.rules = {
      MakeRule("Morning Warmth", 7, 9, RuleAction::kSetTemperature, 22.0, 1,
               "Mother"),
      MakeRule("Evening Comfort", 18, 23, RuleAction::kSetTemperature, 23.0,
               1, "Mother"),
      MakeRule("Kitchen Light", 7, 9, RuleAction::kSetLight, 40.0, 1,
               "Mother"),
  };
  family.push_back(std::move(mother));

  Resident daughter;
  daughter.name = "Daughter";
  daughter.rules = {
      MakeRule("Homework Heat", 15, 21, RuleAction::kSetTemperature, 22.0, 2,
               "Daughter"),
      MakeRule("Night Light", 21, 23, RuleAction::kSetLight, 25.0, 2,
               "Daughter"),
      MakeRule("Sleep Comfort", 23, 24, RuleAction::kSetTemperature, 21.0, 2,
               "Daughter"),
  };
  family.push_back(std::move(daughter));
  return family;
}

Result<rules::MetaRuleTable> MergeResidents(
    const std::vector<Resident>& residents) {
  rules::MetaRuleTable table;
  for (const Resident& resident : residents) {
    for (const rules::MetaRule& rule : resident.rules) {
      IMCF_RETURN_IF_ERROR(table.Add(rule));
    }
  }
  return table;
}

TableSchema ResidentRuleSchema() {
  return TableSchema{
      "resident_rules",
      {{"user", ColumnType::kString},
       {"description", ColumnType::kString},
       {"start_minute", ColumnType::kInt},
       {"end_minute", ColumnType::kInt},
       {"action", ColumnType::kInt},
       {"value", ColumnType::kDouble},
       {"unit", ColumnType::kInt}}};
}

Result<double> PersistResidents(const std::vector<Resident>& residents,
                                Table* table) {
  int64_t total_bytes = 0;
  for (const Resident& resident : residents) {
    for (const rules::MetaRule& rule : resident.rules) {
      Row row{resident.name,
              rule.description,
              static_cast<int64_t>(rule.window.start_minute),
              static_cast<int64_t>(rule.window.end_minute),
              static_cast<int64_t>(rule.action),
              rule.value,
              static_cast<int64_t>(rule.unit)};
      total_bytes += static_cast<int64_t>(
          EncodeRow(table->schema(), row).size());
      IMCF_RETURN_IF_ERROR(table->Insert(row));
    }
  }
  IMCF_RETURN_IF_ERROR(table->Flush());
  if (residents.empty()) return 0.0;
  return static_cast<double>(total_bytes) /
         static_cast<double>(residents.size());
}

Result<std::vector<Resident>> LoadResidents(const Table& table) {
  std::map<std::string, Resident> by_name;
  std::vector<std::string> order;
  for (const Row& row : table.rows()) {
    const std::string& user = std::get<std::string>(row[0]);
    if (by_name.find(user) == by_name.end()) {
      by_name[user].name = user;
      order.push_back(user);
    }
    rules::MetaRule rule;
    rule.user = user;
    rule.description = std::get<std::string>(row[1]);
    rule.window.start_minute = static_cast<int>(std::get<int64_t>(row[2]));
    rule.window.end_minute = static_cast<int>(std::get<int64_t>(row[3]));
    const int64_t action = std::get<int64_t>(row[4]);
    if (action < 0 || action > 2) {
      return Status::Corruption("bad rule action in resident table");
    }
    rule.action = static_cast<rules::RuleAction>(action);
    rule.value = std::get<double>(row[5]);
    rule.unit = static_cast<int>(std::get<int64_t>(row[6]));
    by_name[user].rules.push_back(std::move(rule));
  }
  std::vector<Resident> out;
  out.reserve(order.size());
  for (const std::string& name : order) out.push_back(by_name[name]);
  return out;
}

}  // namespace controller
}  // namespace imcf
