#include "controller/items.h"

#include "common/strings.h"

namespace imcf {
namespace controller {

const char* ItemTypeName(ItemType type) {
  switch (type) {
    case ItemType::kNumber:
      return "Number";
    case ItemType::kSwitch:
      return "Switch";
    case ItemType::kDimmer:
      return "Dimmer";
    case ItemType::kSetpoint:
      return "Setpoint";
  }
  return "?";
}

int ItemRegistry::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status ItemRegistry::Add(Item item) {
  if (IndexOf(item.name) >= 0) {
    return Status::AlreadyExists("item exists: " + item.name);
  }
  items_.push_back(std::move(item));
  return Status::Ok();
}

Status ItemRegistry::BindDevices(const devices::DeviceRegistry& registry) {
  for (const devices::Thing& thing : registry.things()) {
    const char* kind = devices::DeviceKindName(thing.kind);
    Item power;
    power.name = thing.name + "_Power";
    power.type = ItemType::kSwitch;
    power.channel = StrFormat("%s:%s:power", kind, thing.name.c_str());
    power.device = thing.id;
    IMCF_RETURN_IF_ERROR(Add(std::move(power)));

    Item setpoint;
    setpoint.name = thing.name + "_SetPoint";
    setpoint.type = thing.kind == devices::DeviceKind::kLight
                        ? ItemType::kDimmer
                        : ItemType::kSetpoint;
    setpoint.channel = StrFormat(
        "%s:%s:%s", kind, thing.name.c_str(),
        thing.kind == devices::DeviceKind::kLight ? "level" : "settemp");
    setpoint.device = thing.id;
    IMCF_RETURN_IF_ERROR(Add(std::move(setpoint)));
  }
  return Status::Ok();
}

Result<const Item*> ItemRegistry::Get(const std::string& name) const {
  const int index = IndexOf(name);
  if (index < 0) return Status::NotFound("no item named: " + name);
  return &items_[static_cast<size_t>(index)];
}

Status ItemRegistry::Update(const std::string& name, double state,
                            SimTime now) {
  const int index = IndexOf(name);
  if (index < 0) return Status::NotFound("no item named: " + name);
  items_[static_cast<size_t>(index)].state = state;
  items_[static_cast<size_t>(index)].updated_at = now;
  return Status::Ok();
}

Status ItemRegistry::ApplyCommand(const devices::ActuationCommand& command) {
  bool any = false;
  for (Item& item : items_) {
    if (!item.device.has_value() || *item.device != command.device) continue;
    switch (command.type) {
      case devices::CommandType::kSetTemperature:
      case devices::CommandType::kSetLight:
        if (item.type == ItemType::kSetpoint ||
            item.type == ItemType::kDimmer) {
          item.state = command.value;
          item.updated_at = command.time;
          any = true;
        } else if (item.type == ItemType::kSwitch) {
          item.state = 1.0;
          item.updated_at = command.time;
          any = true;
        }
        break;
      case devices::CommandType::kTurnOff:
        if (item.type == ItemType::kSwitch) {
          item.state = 0.0;
          item.updated_at = command.time;
          any = true;
        }
        break;
    }
  }
  if (!any) {
    return Status::NotFound(
        StrFormat("no items bound to device %u", command.device));
  }
  return Status::Ok();
}

}  // namespace controller
}  // namespace imcf
