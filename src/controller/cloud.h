// Cloud Meta-Controller (CMC): community-level budget coordination.
//
// The paper's future work (§V) names two extensions this module provides:
// "multiple energy planners with conflicting interests" and "IMCF-Cloud
// extensions that will enable IMCF to operate as a CMC controller in the
// cloud". A CloudMetaController fronts several households, each running its
// own Local Controller and Energy Planner, that share one community energy
// budget (a shared PV plant, or a feeder/transformer allotment). The CMC
// decides each household's allocation; each household then plans within its
// share exactly as in the single-home system.
//
// Households live in a serve::TenantRegistry, not in the controller: the
// CMC either owns a private registry (the standalone/batch path) or borrows
// the fleet service's registry and coordinates tenants the service already
// admitted (CloudOptions::registry + Adopt). Either way all per-household
// state — simulator, budget ledger, firewall — hangs off the tenant, and
// the CMC holds only the community roster and its demand-forecast cache.
//
// Allocation policies:
//   * kEqualShare          — budget / N, the naive baseline.
//   * kDemandProportional  — shares proportional to each household's
//                            greedy (Meta-Rule) demand forecast.
//   * kUtilitarian         — starts from demand-proportional shares and
//                            iteratively moves budget from the household
//                            with the lowest marginal convenience loss to
//                            the one with the highest marginal gain
//                            (measured by probe simulations), approximating
//                            the community-optimal split.

#ifndef IMCF_CONTROLLER_CLOUD_H_
#define IMCF_CONTROLLER_CLOUD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/plan_arena.h"
#include "fault/fault_plan.h"
#include "fault/retry.h"
#include "serve/tenant_registry.h"
#include "sim/simulation.h"

namespace imcf {
namespace controller {

/// How the CMC splits the community budget.
enum class AllocationPolicy {
  kEqualShare,
  kDemandProportional,
  kUtilitarian,
};

const char* AllocationPolicyName(AllocationPolicy policy);

/// CMC configuration.
struct CloudOptions {
  double community_budget_kwh = 0.0;  ///< shared pool for the period
  SimTime start = 0;                  ///< 0: paper evaluation start
  int hours = 0;                      ///< 0: one year
  AllocationPolicy policy = AllocationPolicy::kDemandProportional;
  /// Utilitarian refinement rounds (each runs one probe pair per
  /// household).
  int utilitarian_rounds = 3;
  /// Fraction of a household's share moved per utilitarian transfer.
  double transfer_fraction = 0.15;
  /// Fault injection: "cmc:<household>" channels gate the CMC's probe
  /// simulations (an unreachable Local Controller degrades the allocation
  /// instead of failing it); the options also propagate into each
  /// household's simulator. Disabled by default.
  fault::FaultOptions fault;
  /// Retry/backoff for CMC probes (and the household command buses).
  fault::RetryPolicy retry;
  uint64_t seed = 99;
  /// Borrowed tenant registry (must outlive the controller). Null: the CMC
  /// owns a private registry built from `fault`/`retry`. When borrowing,
  /// the registry's own fault/retry options govern admitted tenants.
  serve::TenantRegistry* registry = nullptr;
  /// Cost ledger attached to an owned registry, so standalone CMC runs get
  /// per-household attribution too (WithTenant is the chokepoint). Ignored
  /// when `registry` is borrowed — the borrowed registry keeps its own
  /// ledger. Must outlive the controller.
  obs::CostLedger* cost_ledger = nullptr;
};

/// Per-household outcome.
struct HouseholdReport {
  std::string name;
  double allocation_kwh = 0.0;
  double demand_kwh = 0.0;  ///< greedy (MR) forecast used for shares
  double fce_pct = 0.0;
  double fe_kwh = 0.0;
};

/// Community outcome.
struct CloudReport {
  std::string policy;
  double total_fe_kwh = 0.0;
  double community_budget_kwh = 0.0;
  bool within_budget = false;
  double mean_fce_pct = 0.0;      ///< community convenience error
  double fairness_stddev = 0.0;   ///< spread of per-household F_CE
  /// Probe operations that stayed unreachable after retries.
  int64_t probe_failures = 0;
  /// Demand forecasts degraded to the household's configured cap.
  int64_t demand_fallbacks = 0;
  std::vector<HouseholdReport> households;
};

/// The coordinator.
class CloudMetaController {
 public:
  explicit CloudMetaController(CloudOptions options);
  ~CloudMetaController();

  CloudMetaController(const CloudMetaController&) = delete;
  CloudMetaController& operator=(const CloudMetaController&) = delete;

  /// Registers one household: admits it into the registry (spec wins for
  /// simulator construction) and adds it to the community roster. Names
  /// must be unique across the registry.
  Status AddHousehold(std::string name, trace::DatasetSpec spec);

  /// Adds an already-admitted registry tenant to the community roster —
  /// the borrowed-registry path, where the fleet service admits tenants
  /// and the CMC coordinates their shared budget.
  Status Adopt(const std::string& name);

  /// Allocates the community budget per the policy and runs every
  /// household's planner within its share.
  Result<CloudReport> Run();

  size_t household_count() const { return names_.size(); }

  serve::TenantRegistry& registry() { return *registry_; }

 private:
  /// MR-demand forecasts for every household (cached).
  Status ForecastDemands();

  /// Computes allocations for the configured policy.
  Result<std::vector<double>> Allocate();

  /// Runs one household's EP at the given allocation.
  Result<sim::SimulationReport> RunHousehold(const std::string& name,
                                             double allocation_kwh);

  /// Whether the CMC can reach `name`'s Local Controller for a probe at
  /// `probe_time`, after retries under the configured policy. Always true
  /// when fault injection is disabled.
  bool ProbeAvailable(const std::string& name, SimTime probe_time);

  CloudOptions options_;
  fault::FaultPlan fault_plan_;
  SimTime probe_base_ = 0;
  int64_t probe_attempts_ = 0;
  int64_t probe_failures_ = 0;
  int64_t demand_fallbacks_ = 0;
  std::unique_ptr<serve::TenantRegistry> owned_registry_;  // null if borrowed
  serve::TenantRegistry* registry_ = nullptr;
  std::vector<std::string> names_;  ///< community roster, insertion order
  std::map<std::string, double> demand_kwh_;  ///< MR forecast cache
  /// Shared across every probe/household simulation the (single-threaded)
  /// CMC runs: evaluator tables recycle arena blocks instead of
  /// reallocating per slot per tenant.
  core::PlanArena plan_arena_;
};

/// A small community of `n` flats with varied rule tables and ambient
/// seeds — households genuinely conflict over the shared pool.
Result<std::unique_ptr<CloudMetaController>> DefaultNeighborhood(
    int n, double community_budget_kwh, CloudOptions options = {});

}  // namespace controller
}  // namespace imcf

#endif  // IMCF_CONTROLLER_CLOUD_H_
