#include "controller/cloud.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace imcf {
namespace controller {

const char* AllocationPolicyName(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kEqualShare:
      return "equal-share";
    case AllocationPolicy::kDemandProportional:
      return "demand-proportional";
    case AllocationPolicy::kUtilitarian:
      return "utilitarian";
  }
  return "?";
}

CloudMetaController::CloudMetaController(CloudOptions options)
    : options_(std::move(options)), fault_plan_(options_.fault) {
  probe_base_ =
      options_.start != 0 ? options_.start : trace::EvaluationStart();
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<serve::TenantRegistry>(
        /*shards=*/4, options_.fault, options_.retry);
    if (options_.cost_ledger != nullptr) {
      owned_registry_->set_cost_ledger(options_.cost_ledger);
    }
    registry_ = owned_registry_.get();
  }
}

CloudMetaController::~CloudMetaController() {
  auto& reg = obs::MetricRegistry::Default();
  static obs::Counter* const attempts = reg.GetCounter(
      "imcf_fault_cmc_probe_attempts_total",
      "CMC probe attempts against household Local Controllers");
  static obs::Counter* const failures = reg.GetCounter(
      "imcf_fault_cmc_probe_failures_total",
      "CMC probes that stayed unreachable after retries");
  static obs::Counter* const fallbacks = reg.GetCounter(
      "imcf_fault_cmc_demand_fallbacks_total",
      "Demand forecasts degraded to the household's configured cap");
  attempts->Increment(probe_attempts_);
  failures->Increment(probe_failures_);
  fallbacks->Increment(demand_fallbacks_);
}

bool CloudMetaController::ProbeAvailable(const std::string& name,
                                         SimTime probe_time) {
  if (!fault_plan_.enabled()) return true;
  const std::string channel = "cmc:" + name;
  const uint64_t token = MixHash(fault::ChannelHash(channel),
                                 static_cast<uint64_t>(probe_time));
  const fault::RetryTrace trace = fault::RunWithRetry(
      options_.retry, token, probe_time, [&](SimTime when) {
        fault::AttemptResult result;
        const fault::FaultDecision decision = fault_plan_.At(channel, when);
        result.fault = decision.kind;
        if (decision.kind == fault::FaultKind::kDelay) {
          result.latency_seconds = decision.delay_seconds;
        }
        return result;
      });
  probe_attempts_ += trace.attempts;
  if (!trace.success) {
    ++probe_failures_;
    IMCF_TRACE_EVENT("cmc.probe_failed", "controller", name, "attempts",
                     trace.attempts);
  }
  return trace.success;
}

Status CloudMetaController::AddHousehold(std::string name,
                                         trace::DatasetSpec spec) {
  serve::TenantConfig config;
  config.id = name;
  config.seed = MixHash(options_.seed, names_.size() + 1);
  config.budget_kwh = spec.budget_kwh;  // placeholder; Run() allocates
  config.start = options_.start;
  config.hours = options_.hours;
  config.mrt_variation = spec.mrt_variation;
  IMCF_RETURN_IF_ERROR(registry_->AdmitWithSpec(config, std::move(spec)));
  names_.push_back(std::move(name));
  return Status::Ok();
}

Status CloudMetaController::Adopt(const std::string& name) {
  if (std::find(names_.begin(), names_.end(), name) != names_.end()) {
    return Status::AlreadyExists("household adopted: " + name);
  }
  if (!registry_->Contains(name)) {
    return Status::NotFound("no such tenant: " + name);
  }
  names_.push_back(name);
  return Status::Ok();
}

Status CloudMetaController::ForecastDemands() {
  IMCF_TRACE_SPAN(span, "cmc.forecast", "controller");
  for (size_t i = 0; i < names_.size(); ++i) {
    const std::string& name = names_[i];
    if (demand_kwh_.count(name) > 0) continue;  // cached
    const SimTime probe_time =
        probe_base_ + static_cast<SimTime>(i) * kSecondsPerMinute;
    if (!ProbeAvailable(name, probe_time)) {
      // The LC never answered: degrade to the household's configured cap
      // as the demand estimate instead of failing the whole allocation.
      double cap = 0.0;
      IMCF_RETURN_IF_ERROR(
          registry_->WithTenant(name, [&cap](serve::Tenant& tenant) {
            cap = tenant.simulator().options().spec.budget_kwh;
            return Status::Ok();
          }));
      demand_kwh_[name] = cap;
      ++demand_fallbacks_;
      continue;
    }
    double demand = 0.0;
    IMCF_RETURN_IF_ERROR(
        registry_->WithTenant(name, [&demand, this](serve::Tenant& tenant) {
          IMCF_ASSIGN_OR_RETURN(
              sim::SimulationReport report,
              tenant.simulator().Run(sim::Policy::kMetaRule, /*rep=*/0,
                                     &plan_arena_));
          demand = report.fe_kwh;
          return Status::Ok();
        }));
    demand_kwh_[name] = demand;
  }
  return Status::Ok();
}

Result<sim::SimulationReport> CloudMetaController::RunHousehold(
    const std::string& name, double allocation_kwh) {
  IMCF_TRACE_SPAN(span, "cmc.household", "controller");
  span.Detail(name);
  sim::SimulationReport report;
  IMCF_RETURN_IF_ERROR(registry_->WithTenant(
      name, [allocation_kwh, &report, this](serve::Tenant& tenant) {
        IMCF_RETURN_IF_ERROR(tenant.simulator().SetBudget(allocation_kwh));
        IMCF_ASSIGN_OR_RETURN(
            report, tenant.simulator().Run(sim::Policy::kEnergyPlanner,
                                           /*rep=*/0, &plan_arena_));
        return Status::Ok();
      }));
  return report;
}

Result<std::vector<double>> CloudMetaController::Allocate() {
  IMCF_TRACE_SPAN(span, "cmc.allocate", "controller");
  span.Detail(AllocationPolicyName(options_.policy));
  const size_t n = names_.size();
  std::vector<double> shares(n, 0.0);
  switch (options_.policy) {
    case AllocationPolicy::kEqualShare: {
      const double each = options_.community_budget_kwh / static_cast<double>(n);
      std::fill(shares.begin(), shares.end(), each);
      return shares;
    }
    case AllocationPolicy::kDemandProportional:
    case AllocationPolicy::kUtilitarian: {
      IMCF_RETURN_IF_ERROR(ForecastDemands());
      double total_demand = 0.0;
      for (const std::string& name : names_) total_demand += demand_kwh_[name];
      if (total_demand <= 0.0) {
        return Status::FailedPrecondition("no household demand");
      }
      for (size_t i = 0; i < n; ++i) {
        shares[i] = options_.community_budget_kwh * demand_kwh_[names_[i]] /
                    total_demand;
      }
      if (options_.policy == AllocationPolicy::kDemandProportional) {
        return shares;
      }
      // Utilitarian refinement: move budget from the household that loses
      // least to the one that gains most, judged by probe runs.
      for (int round = 0; round < options_.utilitarian_rounds; ++round) {
        double best_gain = 0.0, best_loss = 1e18;
        int gainer = -1, donor = -1;
        for (size_t i = 0; i < n; ++i) {
          // One probe slot per (round, household); an unreachable LC sits
          // the round out (neither donor nor gainer) rather than aborting
          // the refinement.
          const SimTime probe_time =
              probe_base_ +
              static_cast<SimTime>(round + 1) * kSecondsPerHour +
              static_cast<SimTime>(i) * kSecondsPerMinute;
          if (!ProbeAvailable(names_[i], probe_time)) continue;
          const double a = shares[i];
          const double delta = a * options_.transfer_fraction;
          IMCF_ASSIGN_OR_RETURN(sim::SimulationReport at,
                                RunHousehold(names_[i], a));
          IMCF_ASSIGN_OR_RETURN(sim::SimulationReport more,
                                RunHousehold(names_[i], a + delta));
          IMCF_ASSIGN_OR_RETURN(
              sim::SimulationReport less,
              RunHousehold(names_[i], std::max(1.0, a - delta)));
          const double gain = at.fce_pct - more.fce_pct;   // F_CE saved
          const double loss = less.fce_pct - at.fce_pct;   // F_CE lost
          if (gain > best_gain) {
            best_gain = gain;
            gainer = static_cast<int>(i);
          }
          if (loss < best_loss) {
            best_loss = loss;
            donor = static_cast<int>(i);
          }
        }
        if (gainer < 0 || donor < 0 || gainer == donor ||
            best_gain <= best_loss) {
          break;  // no strictly improving transfer
        }
        const double delta =
            shares[static_cast<size_t>(donor)] * options_.transfer_fraction;
        shares[static_cast<size_t>(donor)] -= delta;
        shares[static_cast<size_t>(gainer)] += delta;
      }
      return shares;
    }
  }
  return Status::Internal("unknown allocation policy");
}

Result<CloudReport> CloudMetaController::Run() {
  if (names_.empty()) {
    return Status::FailedPrecondition("no households registered");
  }
  if (options_.community_budget_kwh <= 0.0) {
    return Status::InvalidArgument("community budget must be positive");
  }
  // A coordination round is its own trace root unless a caller already
  // opened one (e.g. a traced bench harness).
  [[maybe_unused]] const obs::TraceContext ambient = obs::Tracer::Current();
  IMCF_TRACE_SPAN_IN(
      run_span, "cmc.run", "controller",
      ambient.valid() ? ambient
                      : obs::Tracer::Root(obs::Tracer::MintTraceId()));
  run_span.Arg("households", static_cast<int64_t>(names_.size()));
  IMCF_ASSIGN_OR_RETURN(std::vector<double> shares, Allocate());

  CloudReport report;
  report.policy = AllocationPolicyName(options_.policy);
  report.community_budget_kwh = options_.community_budget_kwh;

  RunningStat fce;
  for (size_t i = 0; i < names_.size(); ++i) {
    const std::string& name = names_[i];
    IMCF_ASSIGN_OR_RETURN(sim::SimulationReport sim_report,
                          RunHousehold(name, shares[i]));
    HouseholdReport hr;
    hr.name = name;
    hr.allocation_kwh = shares[i];
    const auto demand = demand_kwh_.find(name);
    hr.demand_kwh = demand != demand_kwh_.end() ? demand->second : 0.0;
    hr.fce_pct = sim_report.fce_pct;
    hr.fe_kwh = sim_report.fe_kwh;
    report.households.push_back(hr);
    report.total_fe_kwh += sim_report.fe_kwh;
    fce.Add(sim_report.fce_pct);
  }
  report.mean_fce_pct = fce.mean();
  report.fairness_stddev = fce.stddev();
  report.probe_failures = probe_failures_;
  report.demand_fallbacks = demand_fallbacks_;
  report.within_budget =
      report.total_fe_kwh <= report.community_budget_kwh + 1e-6;
  return report;
}

Result<std::unique_ptr<CloudMetaController>> DefaultNeighborhood(
    int n, double community_budget_kwh, CloudOptions options) {
  if (n <= 0) return Status::InvalidArgument("need at least one household");
  options.community_budget_kwh = community_budget_kwh;
  auto cmc = std::make_unique<CloudMetaController>(options);
  Rng rng(options.seed);
  for (int i = 0; i < n; ++i) {
    trace::DatasetSpec spec = trace::FlatSpec();
    spec.name = StrFormat("home%02d", i);
    spec.seed = MixHash(options.seed, static_cast<uint64_t>(i));
    // Conflicting interests: households differ in rule tables and
    // appetite (device sizes vary ±30%).
    spec.mrt_variation = 0.4;
    const double appetite = rng.UniformDouble(0.7, 1.3);
    spec.hvac.kw_per_degree *= appetite;
    spec.light.max_power_kw *= appetite;
    IMCF_RETURN_IF_ERROR(cmc->AddHousehold(spec.name, spec));
  }
  return cmc;
}

}  // namespace controller
}  // namespace imcf
