// Virtual-time cron scheduler.
//
// The paper's prototype "invoke[s] the cron job daemon that reliably
// executes the EP every few minutes". This module reproduces crontab
// semantics ("m h dom mon dow" with '*' wildcards and "*/n" steps) over
// simulation time, so the live-controller example and the prototype study
// run the planner exactly the way the deployed system does — no wall-clock
// dependence, fully deterministic.

#ifndef IMCF_CONTROLLER_SCHEDULER_H_
#define IMCF_CONTROLLER_SCHEDULER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "obs/metrics.h"

namespace imcf {
namespace controller {

/// A parsed cron expression. Each field is a match-set encoded as a
/// bitmask; '*' matches everything.
class CronSpec {
 public:
  /// Parses "m h dom mon dow" (values, '*', comma lists and "*/n" steps).
  static Result<CronSpec> Parse(const std::string& expression);

  /// True iff the civil minute of `t` matches the spec.
  bool Matches(SimTime t) const;

  /// The next time >= `t` (rounded up to a whole minute) that matches.
  /// Scans at minute granularity; cron specs always match within 4 years.
  SimTime Next(SimTime t) const;

  const std::string& expression() const { return expression_; }

 private:
  CronSpec() = default;

  uint64_t minutes_[1] = {0};  // 60 bits
  uint32_t hours_ = 0;         // 24 bits
  uint32_t days_of_month_ = 0; // bits 1..31
  uint16_t months_ = 0;        // bits 1..12
  uint8_t days_of_week_ = 0;   // bits 0..6
  std::string expression_;
};

/// One scheduled job.
struct CronJob {
  std::string name;
  CronSpec spec;
  std::function<void(SimTime)> action;
  /// Fires of this job (imcf_scheduler_job_fires_total{job=name}); bound
  /// at Schedule() time. Job names are a small closed set per study, so
  /// the label cardinality stays bounded.
  obs::Counter* fires = nullptr;
  /// Virtual time of the previous firing, -1 before the first one. Feeds
  /// the interfire-gap histogram (scheduling drift between occurrences).
  SimTime last_fire = -1;
};

/// Deterministic scheduler over simulation time. Jobs fire in time order;
/// ties fire in registration order.
class VirtualScheduler {
 public:
  explicit VirtualScheduler(SimTime start) : now_(start) {}

  /// Registers a job with a cron expression.
  Status Schedule(std::string name, const std::string& cron_expression,
                  std::function<void(SimTime)> action);

  /// Advances the clock to `until`, firing every matching job occurrence
  /// in (now, until]. Returns the number of firings.
  int64_t AdvanceTo(SimTime until);

  SimTime now() const { return now_; }
  const std::vector<CronJob>& jobs() const { return jobs_; }

 private:
  SimTime now_;
  std::vector<CronJob> jobs_;
};

}  // namespace controller
}  // namespace imcf

#endif  // IMCF_CONTROLLER_SCHEDULER_H_
