#include "controller/scheduler.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/scoped_timer.h"

namespace imcf {
namespace controller {

namespace {

/// Parses one cron field into a bitmask over [lo, hi]. Supports '*',
/// single values, comma lists and "*/n" steps.
Result<uint64_t> ParseField(const std::string& field, int lo, int hi) {
  uint64_t mask = 0;
  if (field == "*") {
    for (int v = lo; v <= hi; ++v) mask |= (1ULL << v);
    return mask;
  }
  if (StartsWith(field, "*/")) {
    IMCF_ASSIGN_OR_RETURN(int64_t step, ParseInt(field.substr(2)));
    if (step <= 0) return Status::InvalidArgument("cron step must be > 0");
    for (int v = lo; v <= hi; v += static_cast<int>(step)) {
      mask |= (1ULL << v);
    }
    return mask;
  }
  for (const std::string& part : Split(field, ',')) {
    IMCF_ASSIGN_OR_RETURN(int64_t value, ParseInt(part));
    if (value < lo || value > hi) {
      return Status::OutOfRange(
          StrFormat("cron value %lld outside [%d, %d]",
                    static_cast<long long>(value), lo, hi));
    }
    mask |= (1ULL << value);
  }
  return mask;
}

}  // namespace

Result<CronSpec> CronSpec::Parse(const std::string& expression) {
  std::vector<std::string> fields;
  for (const std::string& f : Split(Trim(expression), ' ')) {
    if (!f.empty()) fields.push_back(f);
  }
  if (fields.size() != 5) {
    return Status::InvalidArgument(
        "cron expression needs 5 fields (m h dom mon dow): '" + expression +
        "'");
  }
  CronSpec spec;
  spec.expression_ = expression;
  IMCF_ASSIGN_OR_RETURN(spec.minutes_[0], ParseField(fields[0], 0, 59));
  IMCF_ASSIGN_OR_RETURN(uint64_t hours, ParseField(fields[1], 0, 23));
  spec.hours_ = static_cast<uint32_t>(hours);
  IMCF_ASSIGN_OR_RETURN(uint64_t dom, ParseField(fields[2], 1, 31));
  spec.days_of_month_ = static_cast<uint32_t>(dom);
  IMCF_ASSIGN_OR_RETURN(uint64_t mon, ParseField(fields[3], 1, 12));
  spec.months_ = static_cast<uint16_t>(mon);
  IMCF_ASSIGN_OR_RETURN(uint64_t dow, ParseField(fields[4], 0, 6));
  spec.days_of_week_ = static_cast<uint8_t>(dow);
  return spec;
}

bool CronSpec::Matches(SimTime t) const {
  const CivilTime ct = ToCivil(t);
  if ((minutes_[0] & (1ULL << ct.minute)) == 0) return false;
  if ((hours_ & (1U << ct.hour)) == 0) return false;
  if ((days_of_month_ & (1U << ct.day)) == 0) return false;
  if ((months_ & (1U << ct.month)) == 0) return false;
  if ((days_of_week_ & (1U << DayOfWeek(t))) == 0) return false;
  return true;
}

SimTime CronSpec::Next(SimTime t) const {
  // Round up to the next whole minute, then scan. Any valid spec matches
  // within 4 years (leap-day corner); the scan is minute-granular but
  // skips within non-matching hours/days cheaply.
  SimTime candidate = ((t / kSecondsPerMinute) + 1) * kSecondsPerMinute;
  const SimTime limit = candidate + 4LL * 366 * kSecondsPerDay;
  while (candidate < limit) {
    if (Matches(candidate)) return candidate;
    candidate += kSecondsPerMinute;
  }
  return limit;
}

Status VirtualScheduler::Schedule(std::string name,
                                  const std::string& cron_expression,
                                  std::function<void(SimTime)> action) {
  IMCF_ASSIGN_OR_RETURN(CronSpec spec, CronSpec::Parse(cron_expression));
  obs::Counter* fires = obs::MetricRegistry::Default().GetCounter(
      "imcf_scheduler_job_fires_total", "Cron job firings", {{"job", name}});
  jobs_.push_back(CronJob{std::move(name), std::move(spec), std::move(action),
                          fires, /*last_fire=*/-1});
  return Status::Ok();
}

int64_t VirtualScheduler::AdvanceTo(SimTime until) {
  // Dual-stamp span: real latency of the advance (wall ns) and how much
  // virtual time it covered (sim seconds, read back from now_ at scope
  // exit). The gap between the two clocks is the whole point — a week of
  // simulated control typically costs milliseconds of wall time.
  auto& reg = obs::MetricRegistry::Default();
  static obs::Histogram* const wall_ns = reg.GetHistogram(
      "imcf_scheduler_advance_wall_ns",
      "Wall time of one VirtualScheduler::AdvanceTo call",
      obs::LatencyBoundsNs());
  static obs::Histogram* const sim_seconds = reg.GetHistogram(
      "imcf_scheduler_advance_sim_seconds",
      "Virtual time covered by one AdvanceTo call",
      obs::ExponentialBuckets(60.0, 4.0, 10));
  static obs::Histogram* const interfire = reg.GetHistogram(
      "imcf_scheduler_interfire_seconds",
      "Virtual gap between consecutive firings of the same job",
      obs::ExponentialBuckets(60.0, 4.0, 10));
  obs::ScopedTimer span(wall_ns, &now_, sim_seconds);

  int64_t fired = 0;
  while (now_ < until) {
    // Earliest next firing across jobs.
    SimTime next = until + 1;
    for (const CronJob& job : jobs_) {
      next = std::min(next, job.spec.Next(now_));
    }
    if (next > until) break;
    for (CronJob& job : jobs_) {
      if (job.spec.Matches(next)) {
        job.action(next);
        ++fired;
        job.fires->Increment();
        if (job.last_fire >= 0) {
          interfire->Observe(static_cast<double>(next - job.last_fire));
        }
        job.last_fire = next;
      }
    }
    now_ = next;
  }
  now_ = until;
  return fired;
}

}  // namespace controller
}  // namespace imcf
