// Solution representation of the Energy Planner.
//
// "An energy plan solution is a vector s = <s_1, ..., s_N> of size
// N = |MRT|. A vector component s_i represents a meta-rule in table MRT,
// where s_i = 0 means ignoring meta-rule at position i and s_i = 1 means
// adopting meta-rule at position i."

#ifndef IMCF_CORE_SOLUTION_H_
#define IMCF_CORE_SOLUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace imcf {
namespace core {

/// Initialization strategies evaluated in the paper (Fig. 8).
enum class InitStrategy {
  kAllOnes,   ///< adopt every rule (greedy convenience start)
  kRandom,    ///< uniform random bits
  kAllZeros,  ///< ignore every rule (greedy energy start)
};

const char* InitStrategyName(InitStrategy strategy);

/// A binary adoption vector over the MRT's convenience rules.
class Solution {
 public:
  Solution() = default;
  explicit Solution(size_t n, uint8_t fill = 0) : bits_(n, fill) {}

  /// Builds an initial solution per the chosen strategy (Alg. 1 line 8).
  static Solution Init(size_t n, InitStrategy strategy, Rng* rng);

  size_t size() const { return bits_.size(); }
  bool adopted(size_t i) const { return bits_[i] != 0; }
  /// Raw 0/1 bytes, one per component (bulk sync in the SoA evaluator).
  const uint8_t* data() const { return bits_.data(); }
  void set(size_t i, bool value) { bits_[i] = value ? 1 : 0; }
  void flip(size_t i) { bits_[i] ^= 1; }

  /// Number of adopted rules.
  size_t CountAdopted() const;

  /// "101001..." rendering for logs and tests.
  std::string ToString() const;

  friend bool operator==(const Solution&, const Solution&) = default;

 private:
  std::vector<uint8_t> bits_;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_SOLUTION_H_
