// Simulated-annealing planner.
//
// The paper notes that "any heuristic or meta-heuristic approach can be
// utilized in the EP optimization step" and names simulated annealing as
// the other stochastic informed-search option (§IV-C). This planner is that
// extension: identical solution representation, constraint handling and
// neighbourhood as the hill climber, but worse-convenience candidates are
// accepted with probability exp(-Δ/T) under a geometric cooling schedule —
// useful when conflicting rule groups create local optima the climber
// cannot leave. Compared in bench_ablation_search.

#ifndef IMCF_CORE_ANNEALER_H_
#define IMCF_CORE_ANNEALER_H_

#include "core/planner.h"
#include "core/solution.h"

namespace imcf {
namespace core {

/// Annealer parameters.
struct SaOptions {
  int k = 2;             ///< components flipped per move
  int tau_max = 0;       ///< iterations; 0 selects max(40, 2·N)
  InitStrategy init = InitStrategy::kAllOnes;
  double initial_temperature = 0.5;  ///< in normalised-error units
  double cooling = 0.95;             ///< geometric decay per iteration
};

/// Simulated-annealing Energy Planner.
class SimulatedAnnealingPlanner : public SlotPlanner {
 public:
  explicit SimulatedAnnealingPlanner(SaOptions options = {});

  PlanOutcome PlanSlot(const Evaluator& evaluator,
                       Rng* rng) const override;

  std::string name() const override { return "SA"; }

  const SaOptions& options() const { return options_; }

 private:
  SaOptions options_;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_ANNEALER_H_
