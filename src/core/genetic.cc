#include "core/genetic.h"

#include <algorithm>

namespace imcf {
namespace core {

namespace {

/// Lexicographic fitness: feasible beats infeasible; then lower error;
/// infeasible members rank by lower energy (distance to the budget).
struct Member {
  Solution solution;
  Objectives objectives;
  bool feasible = false;

  bool BetterThan(const Member& other) const {
    if (feasible != other.feasible) return feasible;
    if (feasible) return objectives.error_sum < other.objectives.error_sum;
    return objectives.energy_kwh < other.objectives.energy_kwh;
  }
};

}  // namespace

GeneticPlanner::GeneticPlanner(GaOptions options) : options_(options) {}

PlanOutcome GeneticPlanner::PlanSlot(const Evaluator& evaluator,
                                     Rng* rng) const {
  const SlotProblem& problem = evaluator.problem();
  const size_t n = static_cast<size_t>(problem.n_rules);
  const double budget = problem.budget_kwh;
  const int tau_max = options_.tau_max > 0
                          ? options_.tau_max
                          : std::max(240, 4 * problem.n_rules);
  const double mutation =
      options_.mutation_rate > 0.0
          ? options_.mutation_rate
          : 1.0 / std::max<size_t>(n, 1);

  auto evaluate = [&](const Solution& s) {
    Member member;
    member.solution = s;
    member.objectives = evaluator.Evaluate(s);
    member.feasible = member.objectives.FeasibleUnder(budget);
    return member;
  };

  // Initial population: one seeded member, the rest random.
  std::vector<Member> population;
  population.reserve(static_cast<size_t>(options_.population));
  population.push_back(
      evaluate(Solution::Init(n, options_.seed_member, rng)));
  for (int i = 1; i < options_.population; ++i) {
    population.push_back(
        evaluate(Solution::Init(n, InitStrategy::kRandom, rng)));
  }
  int evaluations = options_.population;

  auto tournament_pick = [&]() -> const Member& {
    const Member* best = nullptr;
    for (int i = 0; i < options_.tournament; ++i) {
      const Member& candidate = population[static_cast<size_t>(
          rng->UniformInt(0, options_.population - 1))];
      if (best == nullptr || candidate.BetterThan(*best)) best = &candidate;
    }
    return *best;
  };

  while (evaluations < tau_max) {
    // Offspring: crossover of two tournament winners, then mutation.
    const Member& a = tournament_pick();
    const Member& b = tournament_pick();
    Solution child(n);
    if (rng->Bernoulli(options_.crossover_rate)) {
      for (size_t i = 0; i < n; ++i) {
        child.set(i, rng->Bernoulli(0.5) ? a.solution.adopted(i)
                                         : b.solution.adopted(i));
      }
    } else {
      child = a.solution;
    }
    for (size_t i = 0; i < n; ++i) {
      if (rng->Bernoulli(mutation)) child.flip(i);
    }
    Member offspring = evaluate(child);
    ++evaluations;

    // Steady state: replace the worst member if the child beats it.
    size_t worst = 0;
    for (size_t i = 1; i < population.size(); ++i) {
      if (population[worst].BetterThan(population[i])) worst = i;
    }
    if (offspring.BetterThan(population[worst])) {
      population[worst] = std::move(offspring);
    }
  }

  // Elite extraction.
  size_t best = 0;
  for (size_t i = 1; i < population.size(); ++i) {
    if (population[i].BetterThan(population[best])) best = i;
  }
  PlanOutcome outcome;
  outcome.solution = population[best].solution;
  outcome.objectives = population[best].objectives;
  outcome.feasible = population[best].feasible;
  outcome.iterations = evaluations;

  if (!outcome.feasible) {
    // Same last resort as the other planners.
    Solution zeros(n);
    const Objectives zero_obj = evaluator.Evaluate(zeros);
    if (zero_obj.FeasibleUnder(budget)) {
      outcome.solution = zeros;
      outcome.objectives = zero_obj;
      outcome.feasible = true;
    }
  }
  return outcome;
}

}  // namespace core
}  // namespace imcf
