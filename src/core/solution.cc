#include "core/solution.h"

namespace imcf {
namespace core {

const char* InitStrategyName(InitStrategy strategy) {
  switch (strategy) {
    case InitStrategy::kAllOnes:
      return "all-1s";
    case InitStrategy::kRandom:
      return "random";
    case InitStrategy::kAllZeros:
      return "all-0s";
  }
  return "?";
}

Solution Solution::Init(size_t n, InitStrategy strategy, Rng* rng) {
  Solution s(n);
  switch (strategy) {
    case InitStrategy::kAllOnes:
      for (size_t i = 0; i < n; ++i) s.set(i, true);
      break;
    case InitStrategy::kRandom:
      for (size_t i = 0; i < n; ++i) s.set(i, rng->Bernoulli(0.5));
      break;
    case InitStrategy::kAllZeros:
      break;
  }
  return s;
}

size_t Solution::CountAdopted() const {
  size_t count = 0;
  for (uint8_t b : bits_) count += b;
  return count;
}

std::string Solution::ToString() const {
  std::string out;
  out.reserve(bits_.size());
  for (uint8_t b : bits_) out.push_back(b ? '1' : '0');
  return out;
}

}  // namespace core
}  // namespace imcf
