#include "core/annealer.h"

#include <algorithm>
#include <cmath>

#include "core/hill_climber.h"

namespace imcf {
namespace core {

SimulatedAnnealingPlanner::SimulatedAnnealingPlanner(SaOptions options)
    : options_(options) {}

PlanOutcome SimulatedAnnealingPlanner::PlanSlot(const Evaluator& evaluator,
                                                Rng* rng) const {
  const SlotProblem& problem = evaluator.problem();
  const int n = problem.n_rules;
  const double budget = problem.budget_kwh;
  const int k = std::min(options_.k, FlipBuffer::kCapacity);
  const int tau_max =
      options_.tau_max > 0 ? options_.tau_max : std::max(40, 2 * n);

  // `current` is the walker; `outcome` records the best feasible solution
  // seen (SA may wander away from it).
  Solution current =
      Solution::Init(static_cast<size_t>(n), options_.init, rng);
  Objectives current_obj = evaluator.Evaluate(current);
  bool current_feasible = current_obj.FeasibleUnder(budget);

  PlanOutcome outcome;
  outcome.solution = current;
  outcome.objectives = current_obj;
  outcome.feasible = current_feasible;

  double temperature = options_.initial_temperature;
  FlipBuffer flips;
  for (int tau = 0; tau < tau_max; ++tau) {
    // Same up-to-k neighbourhood (and allocation-free flip buffer) as the
    // hill climber.
    const int j = 1 + static_cast<int>(rng->UniformInt(0, k - 1));
    SampleDistinct(n, j, rng, &flips);
    const Objectives candidate =
        evaluator.EvaluateWithFlips(&current, current_obj, flips);
    const bool candidate_feasible = candidate.FeasibleUnder(budget);

    bool accept;
    if (!current_feasible) {
      // Repair phase, as in the hill climber.
      accept = candidate_feasible ||
               candidate.energy_kwh < current_obj.energy_kwh;
    } else if (!candidate_feasible) {
      accept = false;  // never leave the feasible region
    } else {
      const double delta = candidate.error_sum - current_obj.error_sum;
      accept = delta < 0.0 ||
               rng->UniformDouble() < std::exp(-delta / std::max(temperature, 1e-9));
    }
    if (accept) {
      evaluator.ApplyFlips(&current, flips);
      current_obj = candidate;
      current_feasible = candidate_feasible;
      const bool better_than_best =
          (current_feasible && !outcome.feasible) ||
          (current_feasible == outcome.feasible &&
           current_obj.error_sum < outcome.objectives.error_sum);
      if (better_than_best) {
        outcome.solution = current;
        outcome.objectives = current_obj;
        outcome.feasible = current_feasible;
      }
    }
    temperature *= options_.cooling;
    ++outcome.iterations;
  }

  if (!outcome.feasible) {
    Solution zeros(static_cast<size_t>(n));
    const Objectives zero_obj = evaluator.Evaluate(zeros);
    if (zero_obj.energy_kwh < outcome.objectives.energy_kwh) {
      outcome.solution = zeros;
      outcome.objectives = zero_obj;
      outcome.feasible = zero_obj.FeasibleUnder(budget);
    }
  }
  return outcome;
}

}  // namespace core
}  // namespace imcf
