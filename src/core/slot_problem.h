// SlotProblem: one time slot's planning instance.
//
// The IMCF algorithm runs the EP once per time slot i over the period
// (Alg. 1 line 21). A SlotProblem is everything the planner needs for one
// slot: the active convenience rules with their per-slot energy cost and
// dropped-rule convenience error, the device-group structure (rules
// targeting the same device compete — the adopted rule with the highest
// table position wins the setpoint), and the slot budget E_p from the
// amortization plan.
//
// Convenience errors are normalised per action family so temperature and
// light errors are commensurable:
//   temperature: |desired − actual| / 10 °C, clamped to [0, 1] (two-sided:
//                over- and under-shooting are both uncomfortable)
//   light:       max(0, desired − actual) / 50 units, clamped to [0, 1]
//                (one-sided: ambient light above the requested level is
//                not an inconvenience)
// F_CE percentages reported by the simulator are averages of these values
// over rule activations ("percentage of convenience a user would have if
// that user executed all rules").

#ifndef IMCF_CORE_SLOT_PROBLEM_H_
#define IMCF_CORE_SLOT_PROBLEM_H_

#include <vector>

#include "common/units.h"
#include "devices/device.h"

namespace imcf {
namespace core {

/// Normalisation range for temperature convenience errors (°C).
inline constexpr double kTempErrorRange = 10.0;

/// Comfort deadzone for temperature errors (°C): deviations within this
/// band of the setpoint are imperceptible and cost no convenience
/// (ASHRAE-style comfort tolerance).
inline constexpr double kTempComfortZoneC = 1.0;

/// Normalisation range for light convenience errors (0-100 scale units).
inline constexpr double kLightErrorRange = 50.0;

/// Normalised convenience error of observing `actual` when `desired` was
/// requested, for the given action family.
double NormalizedError(devices::CommandType type, double desired,
                       double actual);

/// One active rule's footprint in a slot.
struct ActiveRule {
  int rule_index = 0;     ///< coordinate in the solution vector
  int group = 0;          ///< device group (same group => same device)
  double desired = 0.0;   ///< the rule's requested value
  double energy_kwh = 0.0;///< energy if this rule drives the device this slot
  double drop_error = 0.0;///< normalised error if the device stays ambient
  devices::CommandType type = devices::CommandType::kSetTemperature;
};

/// One device group's static slot context.
struct DeviceGroup {
  double ambient = 0.0;   ///< ambient value of the controlled quantity
  devices::CommandType type = devices::CommandType::kSetTemperature;
};

/// A single-slot planning instance.
struct SlotProblem {
  int n_rules = 0;                 ///< N = |MRT| convenience rules
  double budget_kwh = 0.0;         ///< E_p for this slot
  double base_energy_kwh = 0.0;    ///< necessity-rule energy (always spent)
  std::vector<ActiveRule> active;  ///< rules whose window covers the slot
  std::vector<DeviceGroup> groups; ///< indexed by ActiveRule::group
};

/// Objective values of a solution on one slot.
struct Objectives {
  double energy_kwh = 0.0;  ///< F_E contribution (includes base energy)
  double error_sum = 0.0;   ///< sum of normalised per-activation errors

  bool FeasibleUnder(double budget) const {
    return energy_kwh <= budget + 1e-9;
  }
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_SLOT_PROBLEM_H_
