#include "core/batch_planner.h"

namespace imcf {
namespace core {

BatchPlanner::BatchPlanner(const SlotPlanner* planner) : planner_(planner) {}

PlanOutcome BatchPlanner::PlanOne(const SlotProblem& problem, Rng* rng) {
  arena_.Reset();
  const std::unique_ptr<Evaluator> evaluator =
      MakeSlotEvaluator(&problem, &arena_);
  return planner_->PlanSlot(*evaluator, rng);
}

std::vector<PlanOutcome> BatchPlanner::PlanBatch(
    std::span<const BatchPlanItem> items) {
  std::vector<PlanOutcome> outcomes;
  outcomes.reserve(items.size());
  for (const BatchPlanItem& item : items) {
    outcomes.push_back(PlanOne(*item.problem, item.rng));
  }
  return outcomes;
}

}  // namespace core
}  // namespace imcf
