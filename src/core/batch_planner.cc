#include "core/batch_planner.h"

#include "obs/accounting/cost_ledger.h"
#include "obs/scoped_timer.h"

namespace imcf {
namespace core {

BatchPlanner::BatchPlanner(const SlotPlanner* planner) : planner_(planner) {}

PlanOutcome BatchPlanner::PlanOne(const SlotProblem& problem, Rng* rng) {
  arena_.Reset();
#if IMCF_ACCOUNTING_ENABLED
  // Cost attribution: charge the ambient tenant scope (if one is open —
  // benches and solo callers have none, making these near-free) with the
  // planning wall time and the arena bytes this problem consumed. The
  // lifetime counter is grouping-independent, so the bytes are identical
  // however the batch is sliced across workers.
  const size_t bytes_before = arena_.lifetime_allocated_bytes();
  const int64_t t0 = obs::ScopedTimer::NowNs();
#endif
  const std::unique_ptr<Evaluator> evaluator =
      MakeSlotEvaluator(&problem, &arena_);
  PlanOutcome outcome = planner_->PlanSlot(*evaluator, rng);
#if IMCF_ACCOUNTING_ENABLED
  IMCF_COST_ADD_PHASE_NS(obs::CostPhase::kPlan,
                         obs::ScopedTimer::NowNs() - t0);
  IMCF_COST_ADD_ARENA_BYTES(
      static_cast<int64_t>(arena_.lifetime_allocated_bytes() - bytes_before));
#endif
  return outcome;
}

std::vector<PlanOutcome> BatchPlanner::PlanBatch(
    std::span<const BatchPlanItem> items) {
  std::vector<PlanOutcome> outcomes;
  outcomes.reserve(items.size());
  for (const BatchPlanItem& item : items) {
    outcomes.push_back(PlanOne(*item.problem, item.rng));
  }
  return outcomes;
}

}  // namespace core
}  // namespace imcf
