// Baseline planners (Section II-C of the paper).
//
//  * No-Rule (NR): "ignores all rules in the Meta-Rule-Table and does not
//    modify the behavior of the autonomous devices" — F_E is 0 (beyond
//    necessity load) and the convenience error is maximal.
//  * Meta-Rule (MR): "ignores the energy consumption and executes all rules
//    greedily" — F_CE is 0 and energy is maximal; the budget is not
//    consulted, so MR plans may be infeasible by design.

#ifndef IMCF_CORE_BASELINES_H_
#define IMCF_CORE_BASELINES_H_

#include "core/planner.h"

namespace imcf {
namespace core {

/// Drops every convenience rule.
class NoRulePlanner : public SlotPlanner {
 public:
  PlanOutcome PlanSlot(const Evaluator& evaluator,
                       Rng* rng) const override;
  std::string name() const override { return "NR"; }
};

/// Adopts every convenience rule, regardless of the budget.
class MetaRulePlanner : public SlotPlanner {
 public:
  PlanOutcome PlanSlot(const Evaluator& evaluator,
                       Rng* rng) const override;
  std::string name() const override { return "MR"; }
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_BASELINES_H_
