// The Energy Planner (EP): hill-climbing local search with k-opt moves
// (Algorithm 1 of the paper, lines 7-18).
//
// Per slot: build an initial solution (all-1s / random / all-0s, Fig. 8),
// then for τ_max iterations flip up to k uniformly random components of the
// current best ("neighborhoods that involve changing up to k components")
// and accept the candidate when it is feasible (F_E(s) ≤ E_p) and improves
// the convenience error (F_CE(s) < F_CE(s*)).
//
// Algorithm 1 as printed deadlocks when the initial solution is infeasible
// (no candidate can have a *lower* error than the all-1s start whose error
// is already minimal), so, like any practical constrained local search, EP
// repairs first: adopted rules are greedily dropped in decreasing
// energy-freed-per-convenience-lost order until the budget holds
// ("dropping certain rules based on preference priority"), then the printed
// acceptance rule takes over; if the search ever walks infeasible again,
// candidates are accepted on energy descent until feasibility returns.
// With a feasible start the behaviour is exactly Algorithm 1. If τ_max
// expires with s* still infeasible, EP falls back to the all-zeros plan
// (the NR vector, feasible whenever the necessity load fits the slot
// budget).

#ifndef IMCF_CORE_HILL_CLIMBER_H_
#define IMCF_CORE_HILL_CLIMBER_H_

#include <span>
#include <vector>

#include "core/planner.h"

namespace imcf {
namespace core {

/// EP tuning knobs (the control parameters studied in §III-C/D).
struct EpOptions {
  /// k-opt width: maximum components flipped per move (Fig. 7 sweeps
  /// 1..4). Each move flips between 1 and k components. Values above
  /// FlipBuffer::kCapacity are clamped to it (far beyond anything the
  /// paper or the benches exercise).
  int k = 4;
  /// Iteration budget τ_max. 0 selects max(40, 2·N) so large rule tables
  /// (dorms: 600 rules) still converge.
  int tau_max = 0;
  /// Initial-solution strategy (Fig. 8).
  InitStrategy init = InitStrategy::kAllOnes;
  /// Stop early once a feasible zero-error solution is held: no candidate
  /// can satisfy the strict-improvement acceptance rule afterwards (the
  /// paper's alternative termination criterion, §II-B).
  bool early_exit = true;
  /// Repair an infeasible start greedily (drop rules by energy freed per
  /// convenience lost) before the stochastic search. When false, recovery
  /// relies on the stochastic energy-descent phase alone — the
  /// configuration Fig. 7's k-opt study uses, since the greedy repair
  /// otherwise solves the slot before k can matter.
  bool greedy_repair = true;
};

/// Fixed-capacity candidate-flip scratch. The planners draw up-to-k flip
/// sets thousands of times per slot; the indices live in this stack buffer
/// and reach the evaluator as a std::span, so the move loop performs no
/// heap traffic at all.
class FlipBuffer {
 public:
  static constexpr int kCapacity = 32;

  int* data() { return data_; }
  const int* data() const { return data_; }
  int size() const { return size_; }
  void set_size(int n) { size_ = n; }

  operator std::span<const int>() const {
    return {data_, static_cast<size_t>(size_)};
  }

 private:
  int data_[kCapacity];
  int size_ = 0;
};

/// Hill-climbing Energy Planner.
class HillClimbingPlanner : public SlotPlanner {
 public:
  explicit HillClimbingPlanner(EpOptions options = {});

  PlanOutcome PlanSlot(const Evaluator& evaluator,
                       Rng* rng) const override;

  std::string name() const override { return "EP"; }

  const EpOptions& options() const { return options_; }

  /// Effective iteration budget for a problem of `n_rules`.
  int EffectiveTauMax(int n_rules) const;

 private:
  EpOptions options_;
};

/// Samples `k` distinct indices in [0, n) into `out` (size k). If k >= n,
/// every index is selected once.
void SampleDistinct(int n, int k, Rng* rng, std::vector<int>* out);

/// Allocation-free variant: fills `out` with min(k, n) distinct indices.
/// Same sampling algorithm and rng stream as the vector overload. Requires
/// k <= FlipBuffer::kCapacity.
void SampleDistinct(int n, int k, Rng* rng, FlipBuffer* out);

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_HILL_CLIMBER_H_
