// Bump allocator backing the planner's per-slot columnar state.
//
// The SoA evaluator flattens a SlotProblem into a handful of parallel
// arrays whose lifetime is exactly one planning pass. Allocating them
// individually (the legacy evaluator's vector-of-vectors) costs a dozen
// heap round trips per slot and scatters the columns across the heap; the
// arena packs them back to back in cache-line-aligned blocks and recycles
// the blocks across slots via Reset().
//
// Lifetime rules (see DESIGN.md §12):
//  * An evaluator borrows the arena; it never outlives the memory. Reset()
//    or destruction of the arena invalidates every evaluator built on it —
//    callers reset once per slot, *before* constructing the slot's
//    evaluators, and never mid-plan.
//  * Reset() keeps the blocks, so a steady-state simulation performs zero
//    allocations after the first slot warms the arena up.
//  * Only trivially-destructible types may be placed in the arena; nothing
//    is destroyed on Reset().
//
// Thread-safety: none. One arena per thread, like the evaluators it backs.

#ifndef IMCF_CORE_PLAN_ARENA_H_
#define IMCF_CORE_PLAN_ARENA_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace imcf {
namespace core {

/// Cache-line-aligned bump allocator with block recycling.
class PlanArena {
 public:
  /// Every allocation is aligned to this many bytes (one x86 cache line,
  /// and enough for any SIMD load the kernels use).
  static constexpr size_t kAlignment = 64;

  explicit PlanArena(size_t first_block_bytes = 16 * 1024);
  ~PlanArena();

  PlanArena(const PlanArena&) = delete;
  PlanArena& operator=(const PlanArena&) = delete;

  /// Returns `bytes` of uninitialized, kAlignment-aligned storage valid
  /// until the next Reset() (or destruction). bytes == 0 yields a valid
  /// non-null pointer.
  void* AllocateBytes(size_t bytes);

  /// Typed array allocation; the memory is uninitialized.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    static_assert(alignof(T) <= kAlignment, "over-aligned type");
    return static_cast<T*>(AllocateBytes(n * sizeof(T)));
  }

  /// Reclaims every allocation but keeps the blocks for reuse, so the next
  /// fill performs no heap traffic until it outgrows the high-water mark.
  void Reset();

  /// Bytes handed out since the last Reset() (before alignment rounding).
  size_t allocated_bytes() const { return allocated_bytes_; }
  /// Largest allocated_bytes() ever observed.
  size_t high_water_bytes() const { return high_water_bytes_; }
  /// Bytes handed out over the arena's whole life — NOT reset by Reset().
  /// Deltas of this counter attribute arena traffic to a unit of work
  /// independently of how work is grouped into passes, which is what the
  /// cost ledger's determinism contract needs (high_water_bytes depends on
  /// batch composition; this does not).
  size_t lifetime_allocated_bytes() const { return lifetime_allocated_bytes_; }
  /// Blocks currently owned (retained across Reset()).
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    char* data = nullptr;  ///< kAlignment-aligned storage
    size_t size = 0;
    size_t used = 0;
  };

  /// Appends a block of at least `min_bytes`, growing geometrically.
  Block& AddBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t current_ = 0;  ///< index of the block being bumped
  size_t allocated_bytes_ = 0;
  size_t high_water_bytes_ = 0;
  size_t lifetime_allocated_bytes_ = 0;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_PLAN_ARENA_H_
