#include "core/hill_climber.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace imcf {
namespace core {

HillClimbingPlanner::HillClimbingPlanner(EpOptions options)
    : options_(options) {}

int HillClimbingPlanner::EffectiveTauMax(int n_rules) const {
  if (options_.tau_max > 0) return options_.tau_max;
  return std::max(120, 2 * n_rules);
}

void SampleDistinct(int n, int k, Rng* rng, std::vector<int>* out) {
  out->clear();
  if (k >= n) {
    for (int i = 0; i < n; ++i) out->push_back(i);
    return;
  }
  if (4 * k < n) {
    // Rejection sampling: with k a small fraction of n (the usual case —
    // the EP flips up to 8 of dozens-to-hundreds of rules) the expected
    // number of retries is negligible and no scratch allocation is needed.
    while (static_cast<int>(out->size()) < k) {
      const int candidate = static_cast<int>(rng->UniformInt(0, n - 1));
      if (std::find(out->begin(), out->end(), candidate) == out->end()) {
        out->push_back(candidate);
      }
    }
    return;
  }
  // Dense samples: rejection degrades toward quadratic as k approaches n
  // (the last draws mostly hit already-taken indices), so run a partial
  // Fisher–Yates shuffle instead — exactly k swaps, uniform without
  // retries.
  std::vector<int> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < k; ++i) {
    const int j = static_cast<int>(rng->UniformInt(i, n - 1));
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    out->push_back(pool[static_cast<size_t>(i)]);
  }
}

namespace {

// Greedy repair: while the solution exceeds the budget, drop the adopted
// active rule that frees the most energy per unit of convenience lost
// ("dropping certain rules based on preference priority", §I-B). Leaves
// the solution feasible whenever any feasible descendant exists on this
// drop path; the stochastic search then takes over.
void GreedyRepair(const SlotEvaluator& evaluator, double budget,
                  PlanOutcome* outcome) {
  std::vector<int> single_flip(1);
  while (!outcome->objectives.FeasibleUnder(budget)) {
    int best_rule = -1;
    double best_ratio = -1.0;
    Objectives best_candidate;
    for (const ActiveRule& active : evaluator.problem().active) {
      if (!outcome->solution.adopted(
              static_cast<size_t>(active.rule_index))) {
        continue;
      }
      single_flip[0] = active.rule_index;
      const Objectives candidate = evaluator.EvaluateWithFlips(
          &outcome->solution, outcome->objectives, single_flip);
      const double freed =
          outcome->objectives.energy_kwh - candidate.energy_kwh;
      if (freed <= 0.0) continue;  // dropping a group loser frees nothing
      const double error_cost =
          candidate.error_sum - outcome->objectives.error_sum;
      const double ratio = freed / (error_cost + 1e-9);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_rule = active.rule_index;
        best_candidate = candidate;
      }
    }
    if (best_rule < 0) break;  // nothing adopted frees energy
    single_flip[0] = best_rule;
    evaluator.ApplyFlips(&outcome->solution, single_flip);
    outcome->objectives = best_candidate;
    ++outcome->repair_drops;
  }
  // Full re-evaluation clears the incremental deltas' float residue.
  outcome->objectives = evaluator.Evaluate(outcome->solution);
  outcome->feasible = outcome->objectives.FeasibleUnder(budget);
}

}  // namespace

PlanOutcome HillClimbingPlanner::PlanSlot(const SlotEvaluator& evaluator,
                                          Rng* rng) const {
  // Under a traced request this nests inside plan.slot; a bare PlanSlot
  // (micro-bench, unit test) has no ambient context and the span is inert.
  IMCF_TRACE_SPAN(search_span, "ep.search", "core");
  const SlotProblem& problem = evaluator.problem();
  const int n = problem.n_rules;
  const double budget = problem.budget_kwh;

  PlanOutcome outcome;
  outcome.solution = Solution::Init(static_cast<size_t>(n), options_.init, rng);
  outcome.objectives = evaluator.Evaluate(outcome.solution);
  outcome.feasible = outcome.objectives.FeasibleUnder(budget);
  if (!outcome.feasible && options_.greedy_repair) {
    GreedyRepair(evaluator, budget, &outcome);
  }

  const int tau_max = EffectiveTauMax(n);
  std::vector<int> flips;
  flips.reserve(static_cast<size_t>(options_.k));
  for (int tau = 0; tau < tau_max; ++tau) {
    if (options_.early_exit && outcome.feasible &&
        outcome.objectives.error_sum <= 0.0) {
      outcome.early_exit = true;
      break;  // zero-error optimum held; nothing can strictly improve
    }
    // "neighborhoods that involve changing *up to* k components" (§II-B):
    // each move flips j ~ U[1, k] distinct components.
    const int j = 1 + static_cast<int>(rng->UniformInt(0, options_.k - 1));
    SampleDistinct(n, j, rng, &flips);
    const Objectives candidate =
        evaluator.EvaluateWithFlips(&outcome.solution, outcome.objectives,
                                    flips);
    const bool candidate_feasible = candidate.FeasibleUnder(budget);
    bool accept;
    if (outcome.feasible) {
      // Algorithm 1 line 13: feasible and strictly better convenience.
      accept = candidate_feasible &&
               candidate.error_sum < outcome.objectives.error_sum;
    } else {
      // Repair phase: march toward feasibility; entering the feasible
      // region is always accepted.
      accept = candidate_feasible ||
               candidate.energy_kwh < outcome.objectives.energy_kwh;
    }
    if (accept) {
      evaluator.ApplyFlips(&outcome.solution, flips);
      outcome.objectives = candidate;
      outcome.feasible = candidate_feasible;
      ++outcome.moves_accepted;
    } else {
      ++outcome.moves_rejected;
    }
    ++outcome.iterations;
  }

  if (!outcome.feasible) {
    // Last resort: the NR vector (drop every convenience rule).
    Solution zeros(static_cast<size_t>(n));
    const Objectives zero_obj = evaluator.Evaluate(zeros);
    if (zero_obj.energy_kwh < outcome.objectives.energy_kwh) {
      outcome.solution = zeros;
      outcome.objectives = zero_obj;
      outcome.feasible = zero_obj.FeasibleUnder(budget);
      outcome.zero_fallback = true;
    }
  }

  // Counters are batched per plan: plain-int tallies in the loop above, one
  // relaxed atomic add per metric here. Function-local statics keep the
  // registry lookup off the hot path entirely.
  {
    using obs::Counter;
    auto& reg = obs::MetricRegistry::Default();
    static Counter* const plans = reg.GetCounter(
        "imcf_planner_plans_total", "Slots planned by the hill climber");
    static Counter* const iterations = reg.GetCounter(
        "imcf_planner_iterations_total", "Hill-climbing iterations spent");
    static Counter* const accepted = reg.GetCounter(
        "imcf_planner_moves_accepted_total", "Neighborhood moves accepted");
    static Counter* const rejected = reg.GetCounter(
        "imcf_planner_moves_rejected_total", "Neighborhood moves rejected");
    static Counter* const repairs = reg.GetCounter(
        "imcf_planner_greedy_repair_drops_total",
        "Rules dropped during greedy repair");
    static Counter* const early = reg.GetCounter(
        "imcf_planner_early_exits_total",
        "Plans that stopped early at a zero-error optimum");
    static Counter* const fallbacks = reg.GetCounter(
        "imcf_planner_infeasible_fallbacks_total",
        "Plans that fell back to the all-zeros vector");
    // Skip zero adds: trivial plans (tiny tables, immediate optima) stay at
    // one atomic op so the flush never shows up in BM_PlanSlotHillClimbing.
    plans->Increment();
    if (outcome.iterations != 0) iterations->Increment(outcome.iterations);
    if (outcome.moves_accepted != 0) {
      accepted->Increment(outcome.moves_accepted);
    }
    if (outcome.moves_rejected != 0) {
      rejected->Increment(outcome.moves_rejected);
    }
    if (outcome.repair_drops != 0) repairs->Increment(outcome.repair_drops);
    if (outcome.early_exit) early->Increment();
    if (outcome.zero_fallback) fallbacks->Increment();
  }

  // Search-shape annotations; every value is rng-stream deterministic.
  search_span.Arg("iterations", outcome.iterations);
  search_span.Arg("accepted", outcome.moves_accepted);
  if (outcome.zero_fallback) {
    search_span.Detail("zero_fallback");
  } else if (outcome.early_exit) {
    search_span.Detail("early_exit");
  } else if (!outcome.feasible) {
    search_span.Detail("infeasible");
  }
  return outcome;
}

}  // namespace core
}  // namespace imcf
