#include "core/hill_climber.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <vector>

#include "core/soa_evaluator.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace imcf {
namespace core {

HillClimbingPlanner::HillClimbingPlanner(EpOptions options)
    : options_(options) {}

int HillClimbingPlanner::EffectiveTauMax(int n_rules) const {
  if (options_.tau_max > 0) return options_.tau_max;
  return std::max(120, 2 * n_rules);
}

namespace {

// Shared sampling core: fills out[0..k) with k distinct indices in [0, n),
// k < n. Both public overloads draw from the identical rng stream so a
// planner's trajectory does not depend on which buffer type it uses.
void SampleDistinctCore(int n, int k, Rng* rng, int* out) {
  if (4 * k < n) {
    // Rejection sampling: with k a small fraction of n (the usual case —
    // the EP flips up to 8 of dozens-to-hundreds of rules) the expected
    // number of retries is negligible and no scratch allocation is needed.
    int taken = 0;
    while (taken < k) {
      const int candidate = static_cast<int>(rng->UniformInt(0, n - 1));
      if (std::find(out, out + taken, candidate) == out + taken) {
        out[taken++] = candidate;
      }
    }
    return;
  }
  // Dense samples: rejection degrades toward quadratic as k approaches n
  // (the last draws mostly hit already-taken indices), so run a partial
  // Fisher–Yates shuffle instead — exactly k swaps, uniform without
  // retries. Dense implies n <= 4k <= 4·FlipBuffer::kCapacity, so a stack
  // pool covers every caller.
  int pool[4 * FlipBuffer::kCapacity];
  std::iota(pool, pool + n, 0);
  for (int i = 0; i < k; ++i) {
    const int j = static_cast<int>(rng->UniformInt(i, n - 1));
    std::swap(pool[i], pool[j]);
    out[i] = pool[i];
  }
}

}  // namespace

void SampleDistinct(int n, int k, Rng* rng, std::vector<int>* out) {
  out->clear();
  if (k >= n) {
    for (int i = 0; i < n; ++i) out->push_back(i);
    return;
  }
  if (4 * k < n || n <= 4 * FlipBuffer::kCapacity) {
    out->resize(static_cast<size_t>(k));
    SampleDistinctCore(n, k, rng, out->data());
    return;
  }
  // Dense draw over a pool too large for the stack core (k beyond the
  // FlipBuffer clamp): heap Fisher–Yates, same algorithm.
  out->reserve(static_cast<size_t>(k));
  std::vector<int> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < k; ++i) {
    const int j = static_cast<int>(rng->UniformInt(i, n - 1));
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    out->push_back(pool[static_cast<size_t>(i)]);
  }
}

void SampleDistinct(int n, int k, Rng* rng, FlipBuffer* out) {
  if (k >= n) {
    const int m = std::min(n, FlipBuffer::kCapacity);
    for (int i = 0; i < m; ++i) out->data()[i] = i;
    out->set_size(m);
    return;
  }
  SampleDistinctCore(n, k, rng, out->data());
  out->set_size(k);
}

namespace {

// Greedy repair: while the solution exceeds the budget, drop the adopted
// active rule that frees the most energy per unit of convenience lost
// ("dropping certain rules based on preference priority", §I-B). Leaves
// the solution feasible whenever any feasible descendant exists on this
// drop path; the stochastic search then takes over.
//
// Drop selection runs off a lazy max-heap of cached per-rule ratios
// (energy freed / convenience lost, both taken from the rule's cached
// single-flip delta, so the key is independent of the running objectives).
// Dropping a rule only changes the contributions of its own device group,
// so only that group's entries are invalidated and re-keyed; stale heap
// nodes are discarded on pop via version counters. Each drop therefore
// costs O(group + log N) instead of re-delta-evaluating all ~N adopted
// rules — the previous dominant cost of planning large tables. Ties in
// ratio resolve to the earliest active-rule position, the old full-scan's
// first-max order.
template <class Eval>
void GreedyRepairImpl(const Eval& evaluator, double budget,
                      PlanOutcome* outcome) {
  struct Entry {
    int rule;
    int group;
    Evaluator::FlipDelta delta;
    uint32_t version = 0;
    bool dirty = true;
  };
  struct Node {
    double ratio;
    uint32_t entry;
    uint32_t version;
  };
  struct NodeLess {
    bool operator()(const Node& a, const Node& b) const {
      if (a.ratio != b.ratio) return a.ratio < b.ratio;
      return a.entry > b.entry;  // ties: earliest active position on top
    }
  };

  const std::vector<ActiveRule>& active = evaluator.problem().active;
  const int n_entries = static_cast<int>(active.size());
  std::vector<Entry> entries;
  entries.reserve(active.size());
  int max_group = -1;
  for (const ActiveRule& rule : active) {
    entries.push_back({rule.rule_index, rule.group, {}, 0, true});
    max_group = std::max(max_group, rule.group);
  }

  // Counting-sorted group index so invalidation touches exactly the
  // dropped rule's groupmates.
  std::vector<int> group_off(static_cast<size_t>(max_group) + 2, 0);
  for (const Entry& e : entries) ++group_off[static_cast<size_t>(e.group) + 1];
  for (size_t g = 1; g < group_off.size(); ++g) group_off[g] += group_off[g - 1];
  std::vector<int> by_group(entries.size());
  {
    std::vector<int> cursor(group_off.begin(), group_off.end() - 1);
    for (int i = 0; i < n_entries; ++i) {
      by_group[static_cast<size_t>(
          cursor[static_cast<size_t>(entries[static_cast<size_t>(i)].group)]++)] = i;
    }
  }

  std::priority_queue<Node, std::vector<Node>, NodeLess> heap;
  const auto refresh = [&](uint32_t idx) {
    Entry& e = entries[idx];
    e.dirty = false;
    ++e.version;  // orphan any queued node for this entry
    if (!outcome->solution.adopted(static_cast<size_t>(e.rule))) return;
    e.delta = evaluator.SingleFlipDelta(outcome->solution, e.rule);
    const double freed = e.delta.before_energy - e.delta.after_energy;
    if (freed <= 0.0) return;  // dropping a group loser frees nothing
    const double error_cost = e.delta.after_error - e.delta.before_error;
    heap.push({freed / (error_cost + 1e-9), idx, e.version});
  };
  for (int i = 0; i < n_entries; ++i) {
    refresh(static_cast<uint32_t>(i));
  }

  FlipBuffer single_flip;
  single_flip.set_size(1);
  while (!outcome->objectives.FeasibleUnder(budget)) {
    int chosen = -1;
    while (!heap.empty()) {
      const Node top = heap.top();
      Entry& e = entries[top.entry];
      if (top.version != e.version) {
        heap.pop();  // superseded by a refresh
        continue;
      }
      if (e.dirty) {
        heap.pop();
        refresh(top.entry);
        continue;
      }
      heap.pop();
      chosen = static_cast<int>(top.entry);
      break;
    }
    if (chosen < 0) break;  // nothing adopted frees energy

    // Candidate objectives use the same subtract-before-then-add-after
    // order as EvaluateWithFlips, so the running objectives match what a
    // delta evaluation of this drop would have returned.
    Entry& e = entries[static_cast<size_t>(chosen)];
    Objectives candidate = outcome->objectives;
    candidate.energy_kwh -= e.delta.before_energy;
    candidate.error_sum -= e.delta.before_error;
    candidate.energy_kwh += e.delta.after_energy;
    candidate.error_sum += e.delta.after_error;
    single_flip.data()[0] = e.rule;
    evaluator.ApplyFlips(&outcome->solution, single_flip);
    outcome->objectives = candidate;
    ++outcome->repair_drops;
    for (int m = group_off[static_cast<size_t>(e.group)];
         m < group_off[static_cast<size_t>(e.group) + 1]; ++m) {
      entries[static_cast<size_t>(by_group[static_cast<size_t>(m)])].dirty =
          true;
    }
  }
  // Full re-evaluation clears the incremental deltas' float residue.
  outcome->objectives = evaluator.Evaluate(outcome->solution);
  outcome->feasible = outcome->objectives.FeasibleUnder(budget);
}

// The planning loop, statically bound to the evaluator's concrete type.
// Instantiated for SoaEvaluator (devirtualized + inlined delta path — the
// bulk of the SoA kernel's speedup) and once for the generic Evaluator
// base (legacy kernel, virtual dispatch). Identical code, identical rng
// stream, so the two kernels trace the same trajectory.
template <class Eval>
PlanOutcome PlanSlotImpl(const Eval& evaluator, const EpOptions& options,
                         int tau_max, Rng* rng) {
  const SlotProblem& problem = evaluator.problem();
  const int n = problem.n_rules;
  const double budget = problem.budget_kwh;

  PlanOutcome outcome;
  outcome.solution = Solution::Init(static_cast<size_t>(n), options.init, rng);
  outcome.objectives = evaluator.Evaluate(outcome.solution);
  outcome.feasible = outcome.objectives.FeasibleUnder(budget);
  if (!outcome.feasible && options.greedy_repair) {
    GreedyRepairImpl(evaluator, budget, &outcome);
  }

  const int k = std::min(options.k, FlipBuffer::kCapacity);
  FlipBuffer flips;
  for (int tau = 0; tau < tau_max; ++tau) {
    if (options.early_exit && outcome.feasible &&
        outcome.objectives.error_sum <= 0.0) {
      outcome.early_exit = true;
      break;  // zero-error optimum held; nothing can strictly improve
    }
    // "neighborhoods that involve changing *up to* k components" (§II-B):
    // each move flips j ~ U[1, k] distinct components.
    const int j = 1 + static_cast<int>(rng->UniformInt(0, k - 1));
    SampleDistinct(n, j, rng, &flips);
    const Objectives candidate =
        evaluator.EvaluateWithFlips(&outcome.solution, outcome.objectives,
                                    flips);
    const bool candidate_feasible = candidate.FeasibleUnder(budget);
    bool accept;
    if (outcome.feasible) {
      // Algorithm 1 line 13: feasible and strictly better convenience.
      accept = candidate_feasible &&
               candidate.error_sum < outcome.objectives.error_sum;
    } else {
      // Repair phase: march toward feasibility; entering the feasible
      // region is always accepted.
      accept = candidate_feasible ||
               candidate.energy_kwh < outcome.objectives.energy_kwh;
    }
    if (accept) {
      evaluator.ApplyFlips(&outcome.solution, flips);
      outcome.objectives = candidate;
      outcome.feasible = candidate_feasible;
      ++outcome.moves_accepted;
    } else {
      ++outcome.moves_rejected;
    }
    ++outcome.iterations;
  }

  if (!outcome.feasible) {
    // Last resort: the NR vector (drop every convenience rule).
    Solution zeros(static_cast<size_t>(n));
    const Objectives zero_obj = evaluator.Evaluate(zeros);
    if (zero_obj.energy_kwh < outcome.objectives.energy_kwh) {
      outcome.solution = zeros;
      outcome.objectives = zero_obj;
      outcome.feasible = zero_obj.FeasibleUnder(budget);
      outcome.zero_fallback = true;
    }
  }
  return outcome;
}

}  // namespace

PlanOutcome HillClimbingPlanner::PlanSlot(const Evaluator& evaluator,
                                          Rng* rng) const {
  // Under a traced request this nests inside plan.slot; a bare PlanSlot
  // (micro-bench, unit test) has no ambient context and the span is inert.
  IMCF_TRACE_SPAN(search_span, "ep.search", "core");
  const int tau_max = EffectiveTauMax(evaluator.problem().n_rules);

  PlanOutcome outcome;
  if (const SoaEvaluator* soa = evaluator.AsSoa()) {
    outcome = PlanSlotImpl(*soa, options_, tau_max, rng);
  } else {
    outcome = PlanSlotImpl(evaluator, options_, tau_max, rng);
  }

  // Counters are batched per plan: plain-int tallies in the loop above, one
  // relaxed atomic add per metric here. Function-local statics keep the
  // registry lookup off the hot path entirely.
  {
    using obs::Counter;
    auto& reg = obs::MetricRegistry::Default();
    static Counter* const plans = reg.GetCounter(
        "imcf_planner_plans_total", "Slots planned by the hill climber");
    static Counter* const iterations = reg.GetCounter(
        "imcf_planner_iterations_total", "Hill-climbing iterations spent");
    static Counter* const accepted = reg.GetCounter(
        "imcf_planner_moves_accepted_total", "Neighborhood moves accepted");
    static Counter* const rejected = reg.GetCounter(
        "imcf_planner_moves_rejected_total", "Neighborhood moves rejected");
    static Counter* const repairs = reg.GetCounter(
        "imcf_planner_greedy_repair_drops_total",
        "Rules dropped during greedy repair");
    static Counter* const early = reg.GetCounter(
        "imcf_planner_early_exits_total",
        "Plans that stopped early at a zero-error optimum");
    static Counter* const fallbacks = reg.GetCounter(
        "imcf_planner_infeasible_fallbacks_total",
        "Plans that fell back to the all-zeros vector");
    // Skip zero adds: trivial plans (tiny tables, immediate optima) stay at
    // one atomic op so the flush never shows up in BM_PlanSlotHillClimbing.
    plans->Increment();
    if (outcome.iterations != 0) iterations->Increment(outcome.iterations);
    if (outcome.moves_accepted != 0) {
      accepted->Increment(outcome.moves_accepted);
    }
    if (outcome.moves_rejected != 0) {
      rejected->Increment(outcome.moves_rejected);
    }
    if (outcome.repair_drops != 0) repairs->Increment(outcome.repair_drops);
    if (outcome.early_exit) early->Increment();
    if (outcome.zero_fallback) fallbacks->Increment();
  }

  // Search-shape annotations; every value is rng-stream deterministic.
  search_span.Arg("iterations", outcome.iterations);
  search_span.Arg("accepted", outcome.moves_accepted);
  if (outcome.zero_fallback) {
    search_span.Detail("zero_fallback");
  } else if (outcome.early_exit) {
    search_span.Detail("early_exit");
  } else if (!outcome.feasible) {
    search_span.Detail("infeasible");
  }
  return outcome;
}

}  // namespace core
}  // namespace imcf
