#include "core/evaluator.h"

#include <cmath>

namespace imcf {
namespace core {

double NormalizedError(devices::CommandType type, double desired,
                       double actual) {
  if (type == devices::CommandType::kSetTemperature) {
    // Thermal discomfort is two-sided: both under- and over-shooting the
    // setpoint is inconvenient. Deviations inside the comfort deadzone are
    // imperceptible.
    const double gap = std::fabs(desired - actual) - kTempComfortZoneC;
    return Clamp(gap / kTempErrorRange, 0.0, 1.0);
  }
  // Luminance comfort is one-sided: a room brighter than the requested
  // level (e.g. daylight exceeding a 30% dimmer setting) costs nothing,
  // only a shortfall does.
  return Clamp((desired - actual) / kLightErrorRange, 0.0, 1.0);
}

SlotEvaluator::SlotEvaluator(const SlotProblem* problem) : problem_(problem) {
  members_.resize(problem_->groups.size());
  active_of_rule_.assign(static_cast<size_t>(problem_->n_rules), -1);
  for (size_t i = 0; i < problem_->active.size(); ++i) {
    const ActiveRule& rule = problem_->active[i];
    members_[static_cast<size_t>(rule.group)].push_back(static_cast<int>(i));
    active_of_rule_[static_cast<size_t>(rule.rule_index)] =
        static_cast<int>(i);
  }
}

Objectives SlotEvaluator::EvaluateGroup(const Solution& s, int group) const {
  Objectives out;
  const std::vector<int>& member_ids = members_[static_cast<size_t>(group)];
  if (member_ids.empty()) return out;

  // The adopted rule latest in the table drives the device.
  const ActiveRule* winner = nullptr;
  for (int id : member_ids) {
    const ActiveRule& rule = problem_->active[static_cast<size_t>(id)];
    if (s.adopted(static_cast<size_t>(rule.rule_index))) {
      if (winner == nullptr || rule.rule_index > winner->rule_index) {
        winner = &rule;
      }
    }
  }
  if (winner != nullptr) out.energy_kwh = winner->energy_kwh;

  for (int id : member_ids) {
    const ActiveRule& rule = problem_->active[static_cast<size_t>(id)];
    if (winner == nullptr) {
      out.error_sum += rule.drop_error;
    } else if (&rule != winner) {
      out.error_sum += NormalizedError(rule.type, rule.desired,
                                       winner->desired);
    }
    // The winner's own error is zero: the device holds its desired value.
  }
  return out;
}

Objectives SlotEvaluator::Evaluate(const Solution& s) const {
  Objectives total;
  total.energy_kwh = problem_->base_energy_kwh;
  for (size_t g = 0; g < members_.size(); ++g) {
    const Objectives group = EvaluateGroup(s, static_cast<int>(g));
    total.energy_kwh += group.energy_kwh;
    total.error_sum += group.error_sum;
  }
  return total;
}

Objectives SlotEvaluator::EvaluateWithFlips(
    Solution* s, const Objectives& base,
    const std::vector<int>& flips) const {
  // Collect the distinct groups touched by active flipped rules. k is tiny
  // (≤ 8 in all experiments) so a linear dedup suffices.
  int touched[16];
  int n_touched = 0;
  for (int rule_index : flips) {
    const int active_id = active_of_rule_[static_cast<size_t>(rule_index)];
    if (active_id < 0) continue;  // inactive rules don't affect the slot
    const int group =
        problem_->active[static_cast<size_t>(active_id)].group;
    bool seen = false;
    for (int i = 0; i < n_touched; ++i) {
      if (touched[i] == group) {
        seen = true;
        break;
      }
    }
    if (!seen && n_touched < 16) touched[n_touched++] = group;
  }
  if (n_touched == 16) {
    // Degenerate (k too large for the fast path): fall back to a full
    // evaluation with the flips applied.
    Solution flipped = *s;
    for (int rule_index : flips) flipped.flip(static_cast<size_t>(rule_index));
    return Evaluate(flipped);
  }

  Objectives out = base;
  // Remove old group contributions, apply flips, add new contributions.
  for (int i = 0; i < n_touched; ++i) {
    const Objectives before = EvaluateGroup(*s, touched[i]);
    out.energy_kwh -= before.energy_kwh;
    out.error_sum -= before.error_sum;
  }
  for (int rule_index : flips) s->flip(static_cast<size_t>(rule_index));
  for (int i = 0; i < n_touched; ++i) {
    const Objectives after = EvaluateGroup(*s, touched[i]);
    out.energy_kwh += after.energy_kwh;
    out.error_sum += after.error_sum;
  }
  for (int rule_index : flips) s->flip(static_cast<size_t>(rule_index));
  return out;
}

Objectives SlotEvaluator::NoRuleObjectives() const {
  Objectives out;
  out.energy_kwh = problem_->base_energy_kwh;
  for (const ActiveRule& rule : problem_->active) {
    out.error_sum += rule.drop_error;
  }
  return out;
}

Objectives SlotEvaluator::AllRulesObjectives() const {
  Solution all_ones(static_cast<size_t>(problem_->n_rules), 1);
  return Evaluate(all_ones);
}

}  // namespace core
}  // namespace imcf
