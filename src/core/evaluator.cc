#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/accounting/cost_ledger.h"
#include "obs/metrics.h"

namespace imcf {
namespace core {

double NormalizedError(devices::CommandType type, double desired,
                       double actual) {
  if (type == devices::CommandType::kSetTemperature) {
    // Thermal discomfort is two-sided: both under- and over-shooting the
    // setpoint is inconvenient. Deviations inside the comfort deadzone are
    // imperceptible.
    const double gap = std::fabs(desired - actual) - kTempComfortZoneC;
    return Clamp(gap / kTempErrorRange, 0.0, 1.0);
  }
  // Luminance comfort is one-sided: a room brighter than the requested
  // level (e.g. daylight exceeding a 30% dimmer setting) costs nothing,
  // only a shortfall does.
  return Clamp((desired - actual) / kLightErrorRange, 0.0, 1.0);
}

void Evaluator::FlushCacheStats(const char* kernel) const {
  // Evaluators are per-(thread, slot), so flushing once at destruction
  // turns millions of plain-int bumps into four relaxed atomic adds. Both
  // kernels aggregate under one counter family distinguished by the
  // kernel= label, so legacy vs SoA hit rates compare directly in a
  // metrics snapshot.
  using obs::Counter;
  struct Family {
    Counter* hits;
    Counter* misses;
    Counter* fulls;
    Counter* applies;
  };
  static const auto make = [](const char* name) {
    auto& reg = obs::MetricRegistry::Default();
    const obs::Labels labels = {{"kernel", name}};
    return Family{
        reg.GetCounter(
            "imcf_evaluator_cache_hits_total",
            "Touched-group contributions served from the incremental cache",
            labels),
        reg.GetCounter(
            "imcf_evaluator_cache_misses_total",
            "Touched-group contributions recomputed via winner rescan",
            labels),
        reg.GetCounter("imcf_evaluator_full_evals_total",
                       "Full Evaluate() passes", labels),
        reg.GetCounter("imcf_evaluator_apply_flips_total",
                       "Accepted moves applied", labels)};
  };
  static const Family legacy = make("legacy");
  static const Family soa = make("soa");
  const Family& family = std::strcmp(kernel, "soa") == 0 ? soa : legacy;
  if (cache_stats_.cache_hits != 0) {
    family.hits->Increment(cache_stats_.cache_hits);
  }
  if (cache_stats_.cache_misses != 0) {
    family.misses->Increment(cache_stats_.cache_misses);
  }
  if (cache_stats_.full_evals != 0) {
    family.fulls->Increment(cache_stats_.full_evals);
  }
  if (cache_stats_.apply_flips != 0) {
    family.applies->Increment(cache_stats_.apply_flips);
  }
  // Per-tenant attribution: both kernels destruct inside the planning
  // scope, so the thread's ambient cost sink (if any) charges the flip
  // evaluations to the tenant being planned. Deterministic: these are
  // pure counts of planner work, independent of worker count.
  IMCF_COST_ADD_FLIP_EVALS(cache_stats_.cache_hits +
                           cache_stats_.cache_misses +
                           cache_stats_.full_evals);
}

SlotEvaluator::SlotEvaluator(const SlotProblem* problem)
    : Evaluator(problem) {
  members_.resize(problem_->groups.size());
  active_of_rule_.assign(static_cast<size_t>(problem_->n_rules), -1);
  for (size_t i = 0; i < problem_->active.size(); ++i) {
    const ActiveRule& rule = problem_->active[i];
    members_[static_cast<size_t>(rule.group)].push_back(static_cast<int>(i));
    active_of_rule_[static_cast<size_t>(rule.rule_index)] =
        static_cast<int>(i);
  }

  // Winner scans early-exit at the first adopted member when the member
  // list is ordered by table position descending.
  for (std::vector<int>& member_ids : members_) {
    std::sort(member_ids.begin(), member_ids.end(), [this](int a, int b) {
      return problem_->active[static_cast<size_t>(a)].rule_index >
             problem_->active[static_cast<size_t>(b)].rule_index;
    });
  }

  // Pre-tabulate every group contribution: a group's energy and error
  // depend only on which member wins (losers and non-adopted members are
  // both measured against the winner's setpoint; with no winner every
  // member contributes its drop error).
  contrib_offset_.resize(members_.size());
  for (size_t g = 0; g < members_.size(); ++g) {
    const std::vector<int>& member_ids = members_[g];
    contrib_offset_[g] = static_cast<int>(contrib_.size());
    Objectives none;
    for (int id : member_ids) {
      none.error_sum += problem_->active[static_cast<size_t>(id)].drop_error;
    }
    contrib_.push_back(none);
    for (int winner_id : member_ids) {
      const ActiveRule& winner =
          problem_->active[static_cast<size_t>(winner_id)];
      Objectives entry;
      entry.energy_kwh = winner.energy_kwh;
      for (int id : member_ids) {
        if (id == winner_id) continue;  // the winner holds its setpoint
        const ActiveRule& rule = problem_->active[static_cast<size_t>(id)];
        entry.error_sum +=
            NormalizedError(rule.type, rule.desired, winner.desired);
      }
      contrib_.push_back(entry);
    }
  }

  group_cache_.resize(members_.size());
  group_winner_.assign(members_.size(), -1);
  // cache_solution_ starts empty (size 0 != n_rules unless the problem is
  // trivial), so every group reads as stale until the first Evaluate.
}

SlotEvaluator::~SlotEvaluator() { FlushCacheStats("legacy"); }

int SlotEvaluator::WinnerPos(const Solution& s, int group) const {
  const std::vector<int>& member_ids = members_[static_cast<size_t>(group)];
  for (size_t k = 0; k < member_ids.size(); ++k) {
    const ActiveRule& rule =
        problem_->active[static_cast<size_t>(member_ids[k])];
    if (s.adopted(static_cast<size_t>(rule.rule_index))) {
      return static_cast<int>(k);
    }
  }
  return -1;
}

int SlotEvaluator::WinnerPosFlippedOne(const Solution& s, int group,
                                       int rule_index) const {
  const std::vector<int>& member_ids = members_[static_cast<size_t>(group)];
  for (size_t k = 0; k < member_ids.size(); ++k) {
    const ActiveRule& rule =
        problem_->active[static_cast<size_t>(member_ids[k])];
    bool bit = s.adopted(static_cast<size_t>(rule.rule_index));
    if (rule.rule_index == rule_index) bit = !bit;
    if (bit) return static_cast<int>(k);
  }
  return -1;
}

bool SlotEvaluator::GroupFresh(const Solution& s, int group) const {
  if (cache_solution_.size() != s.size()) return false;
  for (int id : members_[static_cast<size_t>(group)]) {
    const size_t r = static_cast<size_t>(
        problem_->active[static_cast<size_t>(id)].rule_index);
    if (s.adopted(r) != cache_solution_.adopted(r)) return false;
  }
  return true;
}

void SlotEvaluator::RefreshGroup(const Solution& s, int group) const {
  const int pos = WinnerPos(s, group);
  group_cache_[static_cast<size_t>(group)] = GroupContribution(group, pos);
  group_winner_[static_cast<size_t>(group)] = pos;
  for (int id : members_[static_cast<size_t>(group)]) {
    const size_t r = static_cast<size_t>(
        problem_->active[static_cast<size_t>(id)].rule_index);
    cache_solution_.set(r, s.adopted(r));
  }
}

Objectives SlotEvaluator::EvaluateNoSync(const Solution& s) const {
  Objectives total;
  total.energy_kwh = problem_->base_energy_kwh;
  for (size_t g = 0; g < members_.size(); ++g) {
    const Objectives& group =
        GroupContribution(static_cast<int>(g), WinnerPos(s, static_cast<int>(g)));
    total.energy_kwh += group.energy_kwh;
    total.error_sum += group.error_sum;
  }
  return total;
}

Objectives SlotEvaluator::Evaluate(const Solution& s) const {
  ++cache_stats_.full_evals;
  Objectives total;
  total.energy_kwh = problem_->base_energy_kwh;
  cache_solution_ = s;
  for (size_t g = 0; g < members_.size(); ++g) {
    const int pos = WinnerPos(s, static_cast<int>(g));
    const Objectives& group = GroupContribution(static_cast<int>(g), pos);
    group_cache_[g] = group;
    group_winner_[g] = pos;
    total.energy_kwh += group.energy_kwh;
    total.error_sum += group.error_sum;
  }
  return total;
}

Objectives SlotEvaluator::EvaluateWithFlips(
    Solution* s, const Objectives& base, std::span<const int> flips) const {
  // Collect the distinct groups touched by active flipped rules. k is tiny
  // (≤ 8 in all experiments) so a linear dedup suffices.
  int touched[16];
  int n_touched = 0;
  for (int rule_index : flips) {
    const int active_id = active_of_rule_[static_cast<size_t>(rule_index)];
    if (active_id < 0) continue;  // inactive rules don't affect the slot
    const int group =
        problem_->active[static_cast<size_t>(active_id)].group;
    bool seen = false;
    for (int i = 0; i < n_touched; ++i) {
      if (touched[i] == group) {
        seen = true;
        break;
      }
    }
    if (!seen && n_touched < 16) touched[n_touched++] = group;
  }
  if (n_touched == 16) {
    // Degenerate (k too large for the fast path): fall back to a full
    // evaluation of a flipped copy, leaving the cache bound to *s.
    Solution flipped = *s;
    for (int rule_index : flips) flipped.flip(static_cast<size_t>(rule_index));
    return EvaluateNoSync(flipped);
  }

  Objectives out = base;
  // Remove old group contributions (cached when fresh), apply flips, add
  // new contributions, revert.
  for (int i = 0; i < n_touched; ++i) {
    const bool fresh = GroupFresh(*s, touched[i]);
    if (fresh) {
      ++cache_stats_.cache_hits;
    } else {
      ++cache_stats_.cache_misses;
    }
    const Objectives& before =
        fresh ? group_cache_[static_cast<size_t>(touched[i])]
              : GroupContribution(touched[i], WinnerPos(*s, touched[i]));
    out.energy_kwh -= before.energy_kwh;
    out.error_sum -= before.error_sum;
  }
  for (int rule_index : flips) s->flip(static_cast<size_t>(rule_index));
  for (int i = 0; i < n_touched; ++i) {
    const Objectives& after =
        GroupContribution(touched[i], WinnerPos(*s, touched[i]));
    out.energy_kwh += after.energy_kwh;
    out.error_sum += after.error_sum;
  }
  for (int rule_index : flips) s->flip(static_cast<size_t>(rule_index));
  return out;
}

Evaluator::FlipDelta SlotEvaluator::SingleFlipDelta(const Solution& s,
                                                    int rule_index) const {
  FlipDelta delta;
  const int active_id = active_of_rule_[static_cast<size_t>(rule_index)];
  if (active_id < 0) return delta;  // inactive: nothing changes
  const int group = problem_->active[static_cast<size_t>(active_id)].group;
  const bool fresh = GroupFresh(s, group);
  if (fresh) {
    ++cache_stats_.cache_hits;
  } else {
    ++cache_stats_.cache_misses;
  }
  const Objectives& before =
      fresh ? group_cache_[static_cast<size_t>(group)]
            : GroupContribution(group, WinnerPos(s, group));
  const Objectives& after =
      GroupContribution(group, WinnerPosFlippedOne(s, group, rule_index));
  delta.before_energy = before.energy_kwh;
  delta.before_error = before.error_sum;
  delta.after_energy = after.energy_kwh;
  delta.after_error = after.error_sum;
  return delta;
}

void SlotEvaluator::ApplyFlips(Solution* s,
                               std::span<const int> flips) const {
  ++cache_stats_.apply_flips;
  for (int rule_index : flips) s->flip(static_cast<size_t>(rule_index));
  if (cache_solution_.size() != s->size()) {
    // The cache was never synchronized with a solution of this shape;
    // Evaluate() is the designated sync point.
    Evaluate(*s);
    return;
  }
  touched_scratch_.clear();
  for (int rule_index : flips) {
    const int active_id = active_of_rule_[static_cast<size_t>(rule_index)];
    if (active_id < 0) continue;
    const int group =
        problem_->active[static_cast<size_t>(active_id)].group;
    if (std::find(touched_scratch_.begin(), touched_scratch_.end(), group) ==
        touched_scratch_.end()) {
      touched_scratch_.push_back(group);
    }
  }
  for (int group : touched_scratch_) RefreshGroup(*s, group);
}

Objectives SlotEvaluator::NoRuleObjectives() const {
  Objectives out;
  out.energy_kwh = problem_->base_energy_kwh;
  for (const ActiveRule& rule : problem_->active) {
    out.error_sum += rule.drop_error;
  }
  return out;
}

Objectives SlotEvaluator::AllRulesObjectives() const {
  Solution all_ones(static_cast<size_t>(problem_->n_rules), 1);
  return EvaluateNoSync(all_ones);
}

}  // namespace core
}  // namespace imcf
