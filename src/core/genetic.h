// Genetic-algorithm planner.
//
// A third instantiation of the paper's claim that "any heuristic or
// meta-heuristic approach can be utilized in the EP optimization step": a
// small steady-state GA over adoption vectors — tournament selection,
// uniform crossover, bit-flip mutation, elitism — with the same constraint
// handling as the other planners (feasible-first ranking, greedy repair of
// infeasible elites). Population-based search pays off when device groups
// couple many rules; compared in bench_ablation_search.

#ifndef IMCF_CORE_GENETIC_H_
#define IMCF_CORE_GENETIC_H_

#include "core/planner.h"
#include "core/solution.h"

namespace imcf {
namespace core {

/// GA parameters. Generations derive from tau_max so the evaluation budget
/// is comparable to the climber's: generations = tau_max / population.
struct GaOptions {
  int population = 16;
  int tau_max = 0;            ///< candidate evaluations; 0 = max(240, 4·N)
  double crossover_rate = 0.9;
  double mutation_rate = 0.0; ///< per-bit; 0 selects 1/N
  int tournament = 3;
  InitStrategy seed_member = InitStrategy::kAllOnes;  ///< one seeded elite
};

/// Steady-state genetic planner.
class GeneticPlanner : public SlotPlanner {
 public:
  explicit GeneticPlanner(GaOptions options = {});

  PlanOutcome PlanSlot(const Evaluator& evaluator,
                       Rng* rng) const override;

  std::string name() const override { return "GA"; }

  const GaOptions& options() const { return options_; }

 private:
  GaOptions options_;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_GENETIC_H_
