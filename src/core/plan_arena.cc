#include "core/plan_arena.h"

#include <algorithm>
#include <new>

namespace imcf {
namespace core {

namespace {

size_t RoundUp(size_t bytes) {
  return (bytes + PlanArena::kAlignment - 1) &
         ~(PlanArena::kAlignment - 1);
}

}  // namespace

PlanArena::PlanArena(size_t first_block_bytes) {
  AddBlock(std::max<size_t>(first_block_bytes, kAlignment));
}

PlanArena::~PlanArena() {
  for (Block& block : blocks_) {
    ::operator delete[](block.data, std::align_val_t(kAlignment));
  }
}

PlanArena::Block& PlanArena::AddBlock(size_t min_bytes) {
  // Geometric growth keeps the block count logarithmic in the high-water
  // mark, so Reset()'s first-fit walk stays cheap.
  const size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
  const size_t size = std::max(RoundUp(min_bytes), 2 * prev);
  Block block;
  block.data = static_cast<char*>(
      ::operator new[](size, std::align_val_t(kAlignment)));
  block.size = size;
  blocks_.push_back(block);
  return blocks_.back();
}

void* PlanArena::AllocateBytes(size_t bytes) {
  allocated_bytes_ += bytes;
  lifetime_allocated_bytes_ += bytes;
  high_water_bytes_ = std::max(high_water_bytes_, allocated_bytes_);
  const size_t rounded = RoundUp(bytes);
  while (current_ < blocks_.size()) {
    Block& block = blocks_[current_];
    if (block.size - block.used >= rounded) {
      void* out = block.data + block.used;
      block.used += rounded;
      return out;
    }
    ++current_;
  }
  Block& block = AddBlock(rounded);
  current_ = blocks_.size() - 1;
  block.used = rounded;
  return block.data;
}

void PlanArena::Reset() {
  for (Block& block : blocks_) block.used = 0;
  current_ = 0;
  allocated_bytes_ = 0;
}

}  // namespace core
}  // namespace imcf
