// Structure-of-arrays slot-evaluation kernel (ROADMAP item 2).
//
// Same semantics as SlotEvaluator (see evaluator.h), different layout: the
// group/member/contribution tables are flattened into contiguous parallel
// columns allocated from a PlanArena, so the hot loops are branch-light
// linear sweeps over packed memory instead of vector-of-vector pointer
// chases:
//
//   group_off_[g]..group_off_[g+1]   CSR range of group g's members
//   member_rule_[m]                  rule_index of member m (descending
//                                    within each group: winner scans
//                                    early-exit at the first adopted bit)
//   group_of_rule_[r]                group of rule r, or -1 if inactive
//   contrib_energy_/contrib_error_   winner-contribution columns; group g's
//                                    entries start at group_off_[g] + g
//                                    (no-winner entry first, then one per
//                                    member position)
//   winner_pos_/mirror_              incremental cache: current winner per
//                                    group plus a packed bitset mirror of
//                                    the synced solution
//   sel_energy_/sel_error_           full-eval gather columns, summed with
//                                    simd::SumColumns (AVX2 when the TU is
//                                    built with it, scalar otherwise)
//
// Numerics: the delta path (EvaluateWithFlips / SingleFlipDelta /
// ApplyFlips) performs the exact same scalar operations in the same order
// as the legacy kernel, so deltas agree bit-for-bit given the same base.
// Full Evaluate sums the contribution columns with SIMD lane folding
// instead of the legacy sequential order, so absolute objectives can
// differ from the legacy kernel in the last ulps — the differential tests
// bound this at 1e-9 (documented in DESIGN.md §12).
//
// The class is `final` and its delta methods are defined inline here: the
// hill climber's statically-bound planning loop (hill_climber.cc) calls
// them devirtualized and inlined, which is where most of the kernel's
// speedup on BM_PlanSlotHillClimbing comes from.

#ifndef IMCF_CORE_SOA_EVALUATOR_H_
#define IMCF_CORE_SOA_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <span>

#include "core/evaluator.h"
#include "core/plan_arena.h"

namespace imcf {
namespace core {

/// The SoA kernel. Borrowed-arena variant: all columns live in `*arena`
/// and die at the caller's next arena Reset(); the evaluator itself holds
/// no heap memory. Null arena gives the evaluator a private one.
class SoaEvaluator final : public Evaluator {
 public:
  explicit SoaEvaluator(const SlotProblem* problem,
                        PlanArena* arena = nullptr);

  /// Flushes accumulated CacheStats (kernel="soa").
  ~SoaEvaluator() override;

  Objectives Evaluate(const Solution& s) const override;
  Objectives NoRuleObjectives() const override;
  Objectives AllRulesObjectives() const override;
  const char* kernel_name() const override { return "soa"; }
  const SoaEvaluator* AsSoa() const override { return this; }

  bool IsActive(int rule_index) const override {
    return rule_index >= 0 && rule_index < n_rules_ &&
           group_of_rule_[rule_index] >= 0;
  }

  Objectives EvaluateWithFlips(Solution* s, const Objectives& base,
                               std::span<const int> flips) const override {
    // Same algorithm as the legacy kernel, minus the flip-and-revert: the
    // "after" winner is found by scanning with the flips applied
    // virtually, so *s is never written.
    int32_t touched[kMaxTouchedGroups];
    const int n_touched = CollectTouched(flips, touched);
    if (n_touched == kMaxTouchedGroups) {
      return EvaluateFlippedFull(*s, flips);
    }
    Objectives out = base;
    for (int i = 0; i < n_touched; ++i) {
      const int32_t g = touched[i];
      const bool fresh = GroupFresh(*s, g);
      if (fresh) {
        ++cache_stats_.cache_hits;
      } else {
        ++cache_stats_.cache_misses;
      }
      const size_t idx =
          ContribIndex(g, fresh ? winner_pos_[g] : WinnerPos(*s, g));
      out.energy_kwh -= contrib_energy_[idx];
      out.error_sum -= contrib_error_[idx];
    }
    for (int i = 0; i < n_touched; ++i) {
      const int32_t g = touched[i];
      const size_t idx = ContribIndex(g, WinnerPosFlipped(*s, g, flips));
      out.energy_kwh += contrib_energy_[idx];
      out.error_sum += contrib_error_[idx];
    }
    return out;
  }

  FlipDelta SingleFlipDelta(const Solution& s,
                            int rule_index) const override {
    FlipDelta delta;
    const int32_t g = group_of_rule_[rule_index];
    if (g < 0) return delta;  // inactive: nothing changes
    const bool fresh = GroupFresh(s, g);
    if (fresh) {
      ++cache_stats_.cache_hits;
    } else {
      ++cache_stats_.cache_misses;
    }
    const size_t before =
        ContribIndex(g, fresh ? winner_pos_[g] : WinnerPos(s, g));
    const int one[1] = {rule_index};
    const size_t after =
        ContribIndex(g, WinnerPosFlipped(s, g, std::span<const int>(one)));
    delta.before_energy = contrib_energy_[before];
    delta.before_error = contrib_error_[before];
    delta.after_energy = contrib_energy_[after];
    delta.after_error = contrib_error_[after];
    return delta;
  }

  void ApplyFlips(Solution* s, std::span<const int> flips) const override {
    ++cache_stats_.apply_flips;
    for (int rule_index : flips) s->flip(static_cast<size_t>(rule_index));
    if (mirror_size_ != static_cast<int64_t>(s->size())) {
      // The cache was never synchronized with a solution of this shape;
      // Evaluate() is the designated sync point.
      Evaluate(*s);
      return;
    }
    int32_t touched[kMaxTouchedGroups];
    const int n_touched = CollectTouched(flips, touched);
    if (n_touched == kMaxTouchedGroups) {
      // More distinct groups than the stack dedup tracks: resync wholesale.
      Evaluate(*s);
      return;
    }
    for (int i = 0; i < n_touched; ++i) {
      const int32_t g = touched[i];
      for (int32_t m = group_off_[g]; m < group_off_[g + 1]; ++m) {
        const int32_t r = member_rule_[m];
        const uint64_t bit = uint64_t{1} << (r & 63);
        if (s->adopted(static_cast<size_t>(r))) {
          mirror_[r >> 6] |= bit;
        } else {
          mirror_[r >> 6] &= ~bit;
        }
      }
      winner_pos_[g] = WinnerPos(*s, g);
    }
  }

  /// The arena the columns live in (for tests and capacity reporting).
  const PlanArena& arena() const { return *arena_; }

 private:
  /// Mirrors the legacy kernel's 16-group dedup capacity, including its
  /// degenerate fallback once the cap is reached.
  static constexpr int kMaxTouchedGroups = 16;

  /// Rebuilds the packed adoption mirror from `s` (SWAR byte-pack on
  /// little-endian targets, scalar otherwise) and stamps mirror_size_.
  void SyncMirror(const Solution& s) const;

  /// Index into the contribution columns of group g's entry for winner
  /// position `pos` (-1 selects the no-winner entry).
  size_t ContribIndex(int32_t g, int32_t pos) const {
    return static_cast<size_t>(group_off_[g] + g + 1 + pos);
  }

  /// Dedups the groups of the active rules in `flips` into `out` (capacity
  /// kMaxTouchedGroups); returns the count, saturating at the capacity.
  int CollectTouched(std::span<const int> flips, int32_t* out) const {
    int n_touched = 0;
    for (int rule_index : flips) {
      const int32_t g = group_of_rule_[rule_index];
      if (g < 0) continue;
      // Branchless dedup scan: the membership test is data-dependent and
      // would mispredict; accumulating matches is cheaper than breaking.
      unsigned seen = 0;
      for (int i = 0; i < n_touched; ++i) {
        seen |= static_cast<unsigned>(out[i] == g);
      }
      if (seen == 0 && n_touched < kMaxTouchedGroups) out[n_touched++] = g;
    }
    return n_touched;
  }

  /// First adopted member of `g` under `s` (position within the group), or
  /// -1. Members are ordered by rule_index descending.
  int32_t WinnerPos(const Solution& s, int32_t g) const {
    for (int32_t m = group_off_[g]; m < group_off_[g + 1]; ++m) {
      if (s.adopted(static_cast<size_t>(member_rule_[m]))) {
        return m - group_off_[g];
      }
    }
    return -1;
  }

  /// WinnerPos with `flips` applied virtually on top of `s`.
  int32_t WinnerPosFlipped(const Solution& s, int32_t g,
                           std::span<const int> flips) const {
    for (int32_t m = group_off_[g]; m < group_off_[g + 1]; ++m) {
      const int32_t r = member_rule_[m];
      // Flip indices are distinct, so at most one entry matches r; an
      // accumulated branchless membership test avoids the mispredicted
      // early break that dominated this scan at large flip counts.
      unsigned toggled = 0;
      for (int flip : flips) {
        toggled |= static_cast<unsigned>(flip == r);
      }
      if (s.adopted(static_cast<size_t>(r)) ^ (toggled != 0)) {
        return m - group_off_[g];
      }
    }
    return -1;
  }

  /// Whether the mirror agrees with `s` on every member bit of `g`.
  bool GroupFresh(const Solution& s, int32_t g) const {
    if (mirror_size_ != static_cast<int64_t>(s.size())) return false;
    for (int32_t m = group_off_[g]; m < group_off_[g + 1]; ++m) {
      const int32_t r = member_rule_[m];
      const bool mirrored = (mirror_[r >> 6] >> (r & 63)) & 1;
      if (mirrored != s.adopted(static_cast<size_t>(r))) return false;
    }
    return true;
  }

  /// Full evaluation of `s` with `flips` applied virtually; cache state is
  /// left untouched (the degenerate many-groups path).
  Objectives EvaluateFlippedFull(const Solution& s,
                                 std::span<const int> flips) const;

  PlanArena* arena_ = nullptr;            // the arena backing the columns
  std::unique_ptr<PlanArena> owned_arena_;  // set when no arena was lent

  int32_t n_rules_ = 0;
  int32_t n_groups_ = 0;
  int32_t n_members_ = 0;

  // Immutable columns (arena storage, built once in the constructor).
  const int32_t* group_off_ = nullptr;      // [n_groups_ + 1]
  const int32_t* member_rule_ = nullptr;    // [n_members_]
  const int32_t* group_of_rule_ = nullptr;  // [max(n_rules_, 1)]
  const double* contrib_energy_ = nullptr;  // [n_members_ + n_groups_]
  const double* contrib_error_ = nullptr;   // [n_members_ + n_groups_]

  // Incremental cache + scratch (arena storage, mutated in const methods;
  // the evaluator is single-threaded by contract).
  int32_t* winner_pos_ = nullptr;  // [n_groups_]
  uint64_t* mirror_ = nullptr;     // [ceil(n_rules_ / 64)]
  double* sel_energy_ = nullptr;   // [n_groups_] full-eval gather column
  double* sel_error_ = nullptr;    // [n_groups_]
  /// Size of the solution the mirror was synced against, or -1 before the
  /// first Evaluate (every group reads as stale until then).
  mutable int64_t mirror_size_ = -1;
};

/// Builds the kernel this binary is configured for: SoaEvaluator when
/// IMCF_SOA_EVAL is on (the default), the legacy SlotEvaluator otherwise.
/// `arena` backs the SoA columns (ignored by the legacy kernel); null
/// gives the evaluator private storage.
std::unique_ptr<Evaluator> MakeSlotEvaluator(const SlotProblem* problem,
                                             PlanArena* arena = nullptr);

/// Kernel tag MakeSlotEvaluator builds: "soa" or "legacy".
const char* ConfiguredKernelName();

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_SOA_EVALUATOR_H_
