// Cross-household batched planning (ROADMAP item 2).
//
// The fleet drain and the cloud controller plan many independent slot
// problems back-to-back. Solo planning pays per-problem setup every time:
// evaluator table construction from freshly heap-allocated storage, then
// freeing it all again. BatchPlanner amortizes that across a pass — one
// PlanArena is reused for every problem in the batch, so after the first
// problem grows the arena to steady state, evaluator construction performs
// zero heap allocations (Reset() retains the blocks).
//
// Planning itself is deliberately NOT interleaved across problems: each
// item is planned start-to-finish with its own rng, so every outcome is
// bit-identical to a solo `planner.PlanSlot(...)` call with the same rng
// stream. Batching changes where the evaluator's memory comes from, never
// what the planner computes (batch_planner_test.cc holds this as an
// invariant; execution model in DESIGN.md §12).

#ifndef IMCF_CORE_BATCH_PLANNER_H_
#define IMCF_CORE_BATCH_PLANNER_H_

#include <span>
#include <vector>

#include "core/plan_arena.h"
#include "core/planner.h"
#include "core/soa_evaluator.h"

namespace imcf {
namespace core {

/// One slot problem of a batch, paired with its private rng.
struct BatchPlanItem {
  const SlotProblem* problem = nullptr;
  Rng* rng = nullptr;
};

/// Plans sequences of independent slot problems through one shared arena.
/// Not thread-safe: one BatchPlanner per draining thread.
class BatchPlanner {
 public:
  /// Does not take ownership of `planner`, which must outlive this object.
  explicit BatchPlanner(const SlotPlanner* planner);

  /// Plans one problem. The arena is reset first, so any evaluator storage
  /// from the previous call is recycled in place.
  PlanOutcome PlanOne(const SlotProblem& problem, Rng* rng);

  /// Plans every item in order. Outcomes are positionally aligned with
  /// `items` and bit-identical to per-item solo planning.
  std::vector<PlanOutcome> PlanBatch(std::span<const BatchPlanItem> items);

  const SlotPlanner& planner() const { return *planner_; }

  /// The shared arena (capacity introspection for tests and benches).
  const PlanArena& arena() const { return arena_; }

 private:
  const SlotPlanner* planner_;
  PlanArena arena_;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_BATCH_PLANNER_H_
