// This file is compiled with -mavx2 when the toolchain supports it (see
// src/core/CMakeLists.txt), so simd::SumColumns resolves to the AVX2
// backend here while the rest of the library stays baseline-ISA.

#include "core/soa_evaluator.h"

#include <algorithm>
#include <cstring>

#include "common/simd.h"

namespace imcf {
namespace core {

SoaEvaluator::SoaEvaluator(const SlotProblem* problem, PlanArena* arena)
    : Evaluator(problem) {
  if (arena == nullptr) {
    owned_arena_ = std::make_unique<PlanArena>();
    arena = owned_arena_.get();
  }
  arena_ = arena;
  n_rules_ = problem->n_rules;
  n_groups_ = static_cast<int32_t>(problem->groups.size());
  n_members_ = static_cast<int32_t>(problem->active.size());

  int32_t* group_off = arena->AllocateArray<int32_t>(
      static_cast<size_t>(n_groups_) + 1);
  int32_t* member_rule =
      arena->AllocateArray<int32_t>(static_cast<size_t>(n_members_));
  int32_t* group_of_rule = arena->AllocateArray<int32_t>(
      static_cast<size_t>(std::max(n_rules_, 1)));
  double* contrib_energy = arena->AllocateArray<double>(
      static_cast<size_t>(n_members_ + n_groups_));
  double* contrib_error = arena->AllocateArray<double>(
      static_cast<size_t>(n_members_ + n_groups_));
  // Construction-only scratch: member position -> active-rule id. Lives in
  // the arena like everything else; a few bytes of slack until Reset().
  int32_t* member_active =
      arena->AllocateArray<int32_t>(static_cast<size_t>(n_members_));

  std::fill(group_of_rule, group_of_rule + std::max(n_rules_, 1), -1);

  // CSR member columns via counting sort, then per-group ordering by
  // rule_index descending so winner scans early-exit at the first adopted
  // member (same invariant as the legacy kernel).
  std::fill(group_off, group_off + n_groups_ + 1, 0);
  for (const ActiveRule& rule : problem->active) {
    ++group_off[rule.group + 1];
  }
  for (int32_t g = 0; g < n_groups_; ++g) {
    group_off[g + 1] += group_off[g];
  }
  {
    // Temporary per-group write cursors (arena scratch, like the rest).
    int32_t* cursor = arena->AllocateArray<int32_t>(
        static_cast<size_t>(std::max<int32_t>(n_groups_, 1)));
    std::copy(group_off, group_off + n_groups_, cursor);
    for (size_t i = 0; i < problem->active.size(); ++i) {
      const ActiveRule& rule = problem->active[i];
      member_active[cursor[rule.group]++] = static_cast<int32_t>(i);
      group_of_rule[rule.rule_index] = rule.group;
    }
  }
  for (int32_t g = 0; g < n_groups_; ++g) {
    std::sort(member_active + group_off[g], member_active + group_off[g + 1],
              [problem](int32_t a, int32_t b) {
                return problem->active[static_cast<size_t>(a)].rule_index >
                       problem->active[static_cast<size_t>(b)].rule_index;
              });
  }
  for (int32_t m = 0; m < n_members_; ++m) {
    member_rule[m] =
        problem->active[static_cast<size_t>(member_active[m])].rule_index;
  }

  // Contribution columns, accumulated in the same member order as the
  // legacy kernel so the tabulated values match it bit-for-bit.
  for (int32_t g = 0; g < n_groups_; ++g) {
    const size_t base = static_cast<size_t>(group_off[g] + g);
    double none_error = 0.0;
    for (int32_t m = group_off[g]; m < group_off[g + 1]; ++m) {
      none_error +=
          problem->active[static_cast<size_t>(member_active[m])].drop_error;
    }
    contrib_energy[base] = 0.0;
    contrib_error[base] = none_error;
    for (int32_t w = group_off[g]; w < group_off[g + 1]; ++w) {
      const ActiveRule& winner =
          problem->active[static_cast<size_t>(member_active[w])];
      double error = 0.0;
      for (int32_t m = group_off[g]; m < group_off[g + 1]; ++m) {
        if (m == w) continue;  // the winner holds its setpoint
        const ActiveRule& rule =
            problem->active[static_cast<size_t>(member_active[m])];
        error += NormalizedError(rule.type, rule.desired, winner.desired);
      }
      const size_t idx = base + 1 + static_cast<size_t>(w - group_off[g]);
      contrib_energy[idx] = winner.energy_kwh;
      contrib_error[idx] = error;
    }
  }

  group_off_ = group_off;
  member_rule_ = member_rule;
  group_of_rule_ = group_of_rule;
  contrib_energy_ = contrib_energy;
  contrib_error_ = contrib_error;

  winner_pos_ =
      arena->AllocateArray<int32_t>(static_cast<size_t>(n_groups_));
  const size_t mirror_words = static_cast<size_t>(n_rules_ + 63) / 64;
  mirror_ = arena->AllocateArray<uint64_t>(std::max<size_t>(mirror_words, 1));
  std::memset(mirror_, 0, std::max<size_t>(mirror_words, 1) * sizeof(uint64_t));
  sel_energy_ = arena->AllocateArray<double>(static_cast<size_t>(n_groups_));
  sel_error_ = arena->AllocateArray<double>(static_cast<size_t>(n_groups_));
  // mirror_size_ == -1: every group is stale until the first Evaluate.
}

SoaEvaluator::~SoaEvaluator() { FlushCacheStats("soa"); }

Objectives SoaEvaluator::Evaluate(const Solution& s) const {
  ++cache_stats_.full_evals;
  // Winner scan + contribution gather into the packed selection columns;
  // one SIMD reduction then folds both objectives.
  for (int32_t g = 0; g < n_groups_; ++g) {
    const int32_t pos = WinnerPos(s, g);
    winner_pos_[g] = pos;
    const size_t idx = ContribIndex(g, pos);
    sel_energy_[g] = contrib_energy_[idx];
    sel_error_[g] = contrib_error_[idx];
  }
  SyncMirror(s);

  double energy = 0.0;
  double error = 0.0;
  simd::SumColumns(sel_energy_, sel_error_, static_cast<size_t>(n_groups_),
                   &energy, &error);
  Objectives total;
  total.energy_kwh = problem_->base_energy_kwh + energy;
  total.error_sum = error;
  return total;
}

void SoaEvaluator::SyncMirror(const Solution& s) const {
  const size_t mirror_words = static_cast<size_t>(n_rules_ + 63) / 64;
  const size_t limit = std::min(s.size(), static_cast<size_t>(n_rules_));
  const uint8_t* bytes = s.data();
  size_t r = 0;
  size_t w = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // SWAR pack: the solution stores one 0/1 byte per rule. For an 8-byte
  // group, (bytes & 0x0101..01) * 0x0102040810204080 places byte j's low
  // bit at product bit 56 + j, so the top byte of the product is the
  // 8-bit pack of the group (little-endian load order == rule order).
  // A branchy per-bit loop here made full evaluation slower than the
  // legacy kernel's vector-assign cache sync; this is ~9 ops per 8 rules.
  constexpr uint64_t kLowBits = 0x0101010101010101ULL;
  constexpr uint64_t kPackMul = 0x0102040810204080ULL;
  for (; r + 64 <= limit; r += 64, ++w) {
    uint64_t word = 0;
    for (int g = 0; g < 8; ++g) {
      uint64_t b8;
      std::memcpy(&b8, bytes + r + 8 * static_cast<size_t>(g), 8);
      word |= (((b8 & kLowBits) * kPackMul) >> 56) << (8 * g);
    }
    mirror_[w] = word;
  }
#endif
  // Scalar tail (and the whole range on big-endian targets).
  for (size_t t = w; t < std::max<size_t>(mirror_words, 1); ++t) {
    mirror_[t] = 0;
  }
  for (; r < limit; ++r) {
    if (bytes[r] != 0) mirror_[r >> 6] |= uint64_t{1} << (r & 63);
  }
  mirror_size_ = static_cast<int64_t>(s.size());
}

Objectives SoaEvaluator::EvaluateFlippedFull(
    const Solution& s, std::span<const int> flips) const {
  // The selection columns are pure scratch (consumed before Evaluate
  // returns), so the degenerate path can reuse them without disturbing
  // the winner cache.
  for (int32_t g = 0; g < n_groups_; ++g) {
    const size_t idx = ContribIndex(g, WinnerPosFlipped(s, g, flips));
    sel_energy_[g] = contrib_energy_[idx];
    sel_error_[g] = contrib_error_[idx];
  }
  double energy = 0.0;
  double error = 0.0;
  simd::SumColumns(sel_energy_, sel_error_, static_cast<size_t>(n_groups_),
                   &energy, &error);
  Objectives total;
  total.energy_kwh = problem_->base_energy_kwh + energy;
  total.error_sum = error;
  return total;
}

Objectives SoaEvaluator::NoRuleObjectives() const {
  Objectives out;
  out.energy_kwh = problem_->base_energy_kwh;
  for (const ActiveRule& rule : problem_->active) {
    out.error_sum += rule.drop_error;
  }
  return out;
}

Objectives SoaEvaluator::AllRulesObjectives() const {
  const Solution all_ones(static_cast<size_t>(n_rules_), 1);
  return EvaluateFlippedFull(all_ones, {});
}

#if IMCF_SOA_EVAL

std::unique_ptr<Evaluator> MakeSlotEvaluator(const SlotProblem* problem,
                                             PlanArena* arena) {
  return std::make_unique<SoaEvaluator>(problem, arena);
}

const char* ConfiguredKernelName() { return "soa"; }

#else  // IMCF_SOA_EVAL

std::unique_ptr<Evaluator> MakeSlotEvaluator(const SlotProblem* problem,
                                             PlanArena* arena) {
  (void)arena;  // the legacy kernel owns vector storage
  return std::make_unique<SlotEvaluator>(problem);
}

const char* ConfiguredKernelName() { return "legacy"; }

#endif  // IMCF_SOA_EVAL

}  // namespace core
}  // namespace imcf
