// Planner interface: one strategy for solving a SlotProblem.
//
// The Energy Planner (hill climbing, the paper's contribution), the
// simulated-annealing extension ("any heuristic or meta-heuristic approach
// can be utilized in the EP optimization step") and the NR/MR baselines all
// implement this interface, so the simulator and benchmarks treat them
// uniformly.

#ifndef IMCF_CORE_PLANNER_H_
#define IMCF_CORE_PLANNER_H_

#include <string>

#include "common/rng.h"
#include "core/evaluator.h"

namespace imcf {
namespace core {

/// Result of planning one slot.
struct PlanOutcome {
  Solution solution;
  Objectives objectives;
  int iterations = 0;      ///< optimization iterations spent
  bool feasible = false;   ///< F_E(s) <= E_p achieved
  int moves_accepted = 0;  ///< neighborhood moves taken
  int moves_rejected = 0;  ///< neighborhood moves evaluated but discarded
  int repair_drops = 0;    ///< rules dropped by the greedy repair phase
  bool early_exit = false;    ///< search stopped at a zero-error optimum
  bool zero_fallback = false; ///< fell back to the all-zeros (NR) vector
};

/// Strategy interface.
class SlotPlanner {
 public:
  virtual ~SlotPlanner() = default;

  /// Produces an adoption vector for the evaluator's slot. Implementations
  /// must be deterministic given the Rng stream, and work against any
  /// Evaluator kernel (legacy or SoA).
  virtual PlanOutcome PlanSlot(const Evaluator& evaluator,
                               Rng* rng) const = 0;

  /// Display name ("EP", "NR", "MR", "SA").
  virtual std::string name() const = 0;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_PLANNER_H_
