// Planner interface: one strategy for solving a SlotProblem.
//
// The Energy Planner (hill climbing, the paper's contribution), the
// simulated-annealing extension ("any heuristic or meta-heuristic approach
// can be utilized in the EP optimization step") and the NR/MR baselines all
// implement this interface, so the simulator and benchmarks treat them
// uniformly.

#ifndef IMCF_CORE_PLANNER_H_
#define IMCF_CORE_PLANNER_H_

#include <string>

#include "common/rng.h"
#include "core/evaluator.h"

namespace imcf {
namespace core {

/// Result of planning one slot.
struct PlanOutcome {
  Solution solution;
  Objectives objectives;
  int iterations = 0;    ///< optimization iterations spent
  bool feasible = false; ///< F_E(s) <= E_p achieved
};

/// Strategy interface.
class SlotPlanner {
 public:
  virtual ~SlotPlanner() = default;

  /// Produces an adoption vector for the evaluator's slot. Implementations
  /// must be deterministic given the Rng stream.
  virtual PlanOutcome PlanSlot(const SlotEvaluator& evaluator,
                               Rng* rng) const = 0;

  /// Display name ("EP", "NR", "MR", "SA").
  virtual std::string name() const = 0;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_PLANNER_H_
