// Slot evaluator: computes F_E (Eq. 2) and F_CE (Eq. 1) of a solution on a
// SlotProblem (Alg. 1 lines 9/12).
//
// Semantics per device group: among the group's *adopted* active rules, the
// one latest in the table drives the device (later rules override earlier
// ones, as in openHAB rule files); its energy is charged. Every active rule
// contributes a convenience error measured against the value the device
// actually exhibits — the winner's setpoint if one exists, otherwise the
// ambient value. With the paper's Table II (disjoint windows per device)
// every group has at most one active rule, and this reduces exactly to the
// additive form of Eqs. (1)-(2).
//
// A group's contribution therefore depends only on the identity of its
// winner. The constructor precomputes the contribution for every possible
// winner (and the no-winner case) per group, member lists are sorted by
// rule_index descending so the winner scan early-exits at the first adopted
// member, and an incremental cache keeps per-group contributions plus the
// current winner index synchronized with the planner's working solution so
// EvaluateWithFlips subtracts "before" contributions in O(1) per touched
// group.
//
// Thread-safety: the incremental cache is internal mutable state, so a
// SlotEvaluator instance must not be shared across threads. Construction is
// cheap — the parallel simulation layer builds one evaluator per (thread,
// slot) and never shares them.

#ifndef IMCF_CORE_EVALUATOR_H_
#define IMCF_CORE_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "core/slot_problem.h"
#include "core/solution.h"

namespace imcf {
namespace core {

/// Evaluator bound to one SlotProblem. Groups are pre-indexed and their
/// winner contributions pre-tabulated, so full evaluation is O(groups +
/// winner scans) and k-flip delta evaluation is O(k) cache lookups plus k
/// early-exit winner scans.
class SlotEvaluator {
 public:
  /// Tally of the incremental cache's behaviour over this evaluator's
  /// lifetime. Plain (non-atomic) ints — the evaluator is single-threaded
  /// by contract; totals flush to the metric registry on destruction.
  struct CacheStats {
    int64_t cache_hits = 0;    ///< touched-group "before" read from cache
    int64_t cache_misses = 0;  ///< touched group was stale, winner rescan
    int64_t full_evals = 0;    ///< Evaluate() full passes (cache syncs)
    int64_t apply_flips = 0;   ///< accepted moves applied via ApplyFlips()
  };

  explicit SlotEvaluator(const SlotProblem* problem);

  /// Flushes accumulated CacheStats to the default metric registry
  /// (imcf_evaluator_* counters).
  ~SlotEvaluator();

  /// Full evaluation of `s` on the slot. Also resynchronizes the
  /// incremental cache to `s` (Evaluate is the cache's sync point).
  Objectives Evaluate(const Solution& s) const;

  /// Objectives after flipping `flips` (indices into the solution vector)
  /// on top of `*s`, given `s`'s objectives `base`. Only the groups touched
  /// by the flipped rules are recomputed; their "before" contributions come
  /// from the incremental cache when it is fresh for the group (the cached
  /// path) and from a winner rescan otherwise (the fallback path). The
  /// flips are applied and then reverted, so `*s` is unchanged on return
  /// (the pointer makes the transient mutation explicit).
  Objectives EvaluateWithFlips(Solution* s, const Objectives& base,
                               const std::vector<int>& flips) const;

  /// Permanently applies `flips` to `*s` — the accept step of a local
  /// search move — and updates the incremental cache for the touched
  /// groups, keeping cached contributions in sync with the new solution.
  /// Equivalent to flipping the bits by hand, but preserves cache
  /// freshness so subsequent EvaluateWithFlips calls stay on the O(1)
  /// cached path.
  void ApplyFlips(Solution* s, const std::vector<int>& flips) const;

  /// Objectives of the empty (all-zeros) solution: ambient everywhere.
  Objectives NoRuleObjectives() const;

  /// Objectives of the full (all-ones) solution.
  Objectives AllRulesObjectives() const;

  /// Number of rule activations in this slot (|active|).
  int Activations() const {
    return static_cast<int>(problem_->active.size());
  }

  const SlotProblem& problem() const { return *problem_; }

  /// Incremental-cache behaviour so far (also exported to the registry on
  /// destruction).
  const CacheStats& cache_stats() const { return cache_stats_; }

  /// Whether solution coordinate `rule_index` is active in this slot.
  bool IsActive(int rule_index) const {
    return rule_index >= 0 &&
           rule_index < static_cast<int>(active_of_rule_.size()) &&
           active_of_rule_[static_cast<size_t>(rule_index)] >= 0;
  }

 private:
  /// Position in members_[group] of the winning member under `s`, or -1
  /// when no member is adopted. Members are sorted by rule_index
  /// descending, so the scan stops at the first adopted member.
  int WinnerPos(const Solution& s, int group) const;

  /// Pre-tabulated contribution of `group` when members_[group][winner_pos]
  /// wins (winner_pos == -1 selects the no-winner entry).
  const Objectives& GroupContribution(int group, int winner_pos) const {
    return contrib_[static_cast<size_t>(
        contrib_offset_[static_cast<size_t>(group)] + 1 + winner_pos)];
  }

  /// Full evaluation without touching the cache (used by the degenerate
  /// many-groups fallback, which evaluates a transient flipped copy).
  Objectives EvaluateNoSync(const Solution& s) const;

  /// Whether the cached contribution of `group` is valid for `s` (the
  /// cache mirror agrees with `s` on every member bit of the group).
  bool GroupFresh(const Solution& s, int group) const;

  /// Recomputes and stores the cache entry of `group` for `*s` and aligns
  /// the cache mirror's member bits.
  void RefreshGroup(const Solution& s, int group) const;

  const SlotProblem* problem_;  // not owned
  /// active-rule indices per group, sorted by rule_index descending.
  std::vector<std::vector<int>> members_;
  /// rule_index -> position in problem_->active (or -1 if inactive).
  std::vector<int> active_of_rule_;
  /// Winner-contribution table: for group g, contrib_[offset[g]] is the
  /// no-winner contribution and contrib_[offset[g] + 1 + k] the
  /// contribution when members_[g][k] wins.
  std::vector<Objectives> contrib_;
  std::vector<int> contrib_offset_;

  // Incremental cache (see header comment). `cache_solution_` mirrors the
  // solution the cache was last synchronized with; freshness is checked
  // per group on the member bits only, so the cache self-heals when a
  // caller mutates the solution without ApplyFlips.
  mutable Solution cache_solution_;
  mutable std::vector<Objectives> group_cache_;
  mutable std::vector<int> group_winner_;
  mutable std::vector<int> touched_scratch_;
  mutable CacheStats cache_stats_;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_EVALUATOR_H_
