// Slot evaluator: computes F_E (Eq. 2) and F_CE (Eq. 1) of a solution on a
// SlotProblem (Alg. 1 lines 9/12).
//
// Semantics per device group: among the group's *adopted* active rules, the
// one latest in the table drives the device (later rules override earlier
// ones, as in openHAB rule files); its energy is charged. Every active rule
// contributes a convenience error measured against the value the device
// actually exhibits — the winner's setpoint if one exists, otherwise the
// ambient value. With the paper's Table II (disjoint windows per device)
// every group has at most one active rule, and this reduces exactly to the
// additive form of Eqs. (1)-(2).

#ifndef IMCF_CORE_EVALUATOR_H_
#define IMCF_CORE_EVALUATOR_H_

#include <vector>

#include "core/slot_problem.h"
#include "core/solution.h"

namespace imcf {
namespace core {

/// Evaluator bound to one SlotProblem. Groups are pre-indexed so full
/// evaluation is O(active) and k-flip delta evaluation is O(k · group).
class SlotEvaluator {
 public:
  explicit SlotEvaluator(const SlotProblem* problem);

  /// Full evaluation of `s` on the slot.
  Objectives Evaluate(const Solution& s) const;

  /// Objectives after flipping `flips` (indices into the solution vector)
  /// on top of `*s`, given `s`'s objectives `base`. Only the groups touched
  /// by the flipped rules are recomputed. The flips are applied and then
  /// reverted, so `*s` is unchanged on return (the pointer makes the
  /// transient mutation explicit).
  Objectives EvaluateWithFlips(Solution* s, const Objectives& base,
                               const std::vector<int>& flips) const;

  /// Objectives of the empty (all-zeros) solution: ambient everywhere.
  Objectives NoRuleObjectives() const;

  /// Objectives of the full (all-ones) solution.
  Objectives AllRulesObjectives() const;

  /// Number of rule activations in this slot (|active|).
  int Activations() const {
    return static_cast<int>(problem_->active.size());
  }

  const SlotProblem& problem() const { return *problem_; }

  /// Whether solution coordinate `rule_index` is active in this slot.
  bool IsActive(int rule_index) const {
    return rule_index >= 0 &&
           rule_index < static_cast<int>(active_of_rule_.size()) &&
           active_of_rule_[static_cast<size_t>(rule_index)] >= 0;
  }

 private:
  /// Energy and error contribution of one device group under `s`.
  Objectives EvaluateGroup(const Solution& s, int group) const;

  const SlotProblem* problem_;  // not owned
  /// active-rule indices per group.
  std::vector<std::vector<int>> members_;
  /// rule_index -> position in problem_->active (or -1 if inactive).
  std::vector<int> active_of_rule_;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_EVALUATOR_H_
