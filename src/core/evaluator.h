// Slot evaluation: computes F_E (Eq. 2) and F_CE (Eq. 1) of a solution on
// a SlotProblem (Alg. 1 lines 9/12).
//
// Semantics per device group: among the group's *adopted* active rules, the
// one latest in the table drives the device (later rules override earlier
// ones, as in openHAB rule files); its energy is charged. Every active rule
// contributes a convenience error measured against the value the device
// actually exhibits — the winner's setpoint if one exists, otherwise the
// ambient value. With the paper's Table II (disjoint windows per device)
// every group has at most one active rule, and this reduces exactly to the
// additive form of Eqs. (1)-(2).
//
// Two kernels implement the contract:
//  * SlotEvaluator (this header) — the original pointer-rich layout with
//    the incremental group cache; retained as the differential-testing
//    oracle and selected by -DIMCF_SOA_EVAL=OFF.
//  * SoaEvaluator (soa_evaluator.h) — the structure-of-arrays rebuild of
//    the same semantics: contiguous CSR member columns, packed contribution
//    columns, SIMD objective accumulation. Default kernel.
//
// Thread-safety: the incremental cache is internal mutable state, so an
// evaluator instance must not be shared across threads. Construction is
// cheap — the parallel simulation layer builds one evaluator per (thread,
// slot) and never shares them.

#ifndef IMCF_CORE_EVALUATOR_H_
#define IMCF_CORE_EVALUATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/slot_problem.h"
#include "core/solution.h"

namespace imcf {
namespace core {

class SoaEvaluator;

/// Kernel-independent slot-evaluation contract. Planners program against
/// this interface, so the SoA kernel slots in behind the IMCF_SOA_EVAL
/// feature flag without touching any search code.
class Evaluator {
 public:
  /// Tally of the incremental cache's behaviour over this evaluator's
  /// lifetime. Plain (non-atomic) ints — the evaluator is single-threaded
  /// by contract; totals flush to the metric registry on destruction under
  /// one counter family labelled kernel="legacy"|"soa".
  struct CacheStats {
    int64_t cache_hits = 0;    ///< touched-group "before" read from cache
    int64_t cache_misses = 0;  ///< touched group was stale, winner rescan
    int64_t full_evals = 0;    ///< Evaluate() full passes (cache syncs)
    int64_t apply_flips = 0;   ///< accepted moves applied via ApplyFlips()
  };

  /// Contribution change of flipping one rule on top of a solution: the
  /// touched group's contribution before and after the flip. Applying it
  /// with the same subtract-before-then-add-after order as
  /// EvaluateWithFlips reproduces that call bit-for-bit, which is what the
  /// greedy repair's delta cache relies on.
  struct FlipDelta {
    double before_energy = 0.0;
    double after_energy = 0.0;
    double before_error = 0.0;
    double after_error = 0.0;
  };

  virtual ~Evaluator() = default;

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Full evaluation of `s` on the slot. Also resynchronizes the
  /// incremental cache to `s` (Evaluate is the cache's sync point).
  virtual Objectives Evaluate(const Solution& s) const = 0;

  /// Objectives after flipping `flips` (indices into the solution vector)
  /// on top of `*s`, given `s`'s objectives `base`. Only the groups touched
  /// by the flipped rules are recomputed; their "before" contributions come
  /// from the incremental cache when it is fresh for the group (the cached
  /// path) and from a winner rescan otherwise (the fallback path). `*s` is
  /// unchanged on return (the pointer marks kernels that transiently
  /// mutate it, as the legacy flip-and-revert implementation does).
  virtual Objectives EvaluateWithFlips(Solution* s, const Objectives& base,
                                       std::span<const int> flips) const = 0;

  /// Permanently applies `flips` to `*s` — the accept step of a local
  /// search move — and updates the incremental cache for the touched
  /// groups, keeping cached contributions in sync with the new solution.
  /// Equivalent to flipping the bits by hand, but preserves cache
  /// freshness so subsequent EvaluateWithFlips calls stay on the O(1)
  /// cached path.
  virtual void ApplyFlips(Solution* s, std::span<const int> flips) const = 0;

  /// The touched group's contribution before/after flipping `rule_index`
  /// alone on top of `s` (zero deltas when the rule is inactive). Same
  /// cache policy as EvaluateWithFlips; `s` is never mutated.
  virtual FlipDelta SingleFlipDelta(const Solution& s,
                                    int rule_index) const = 0;

  /// Objectives of the empty (all-zeros) solution: ambient everywhere.
  virtual Objectives NoRuleObjectives() const = 0;

  /// Objectives of the full (all-ones) solution.
  virtual Objectives AllRulesObjectives() const = 0;

  /// Whether solution coordinate `rule_index` is active in this slot.
  virtual bool IsActive(int rule_index) const = 0;

  /// Kernel tag for metrics and reports: "legacy" or "soa".
  virtual const char* kernel_name() const = 0;

  /// Cheap devirtualization hook: the hill climber runs a statically-bound
  /// loop when the evaluator is the SoA kernel. Avoids RTTI.
  virtual const SoaEvaluator* AsSoa() const { return nullptr; }

  /// Number of rule activations in this slot (|active|).
  int Activations() const {
    return static_cast<int>(problem_->active.size());
  }

  const SlotProblem& problem() const { return *problem_; }

  /// Incremental-cache behaviour so far (also exported to the registry on
  /// destruction).
  const CacheStats& cache_stats() const { return cache_stats_; }

 protected:
  explicit Evaluator(const SlotProblem* problem) : problem_(problem) {}

  /// Flushes cache_stats_ to the imcf_evaluator_*_total{kernel=...} counter
  /// family. Called once from each kernel's destructor.
  void FlushCacheStats(const char* kernel) const;

  const SlotProblem* problem_;  // not owned
  mutable CacheStats cache_stats_;
};

/// The original evaluator: per-group member vectors plus an incremental
/// group cache. Groups are pre-indexed and their winner contributions
/// pre-tabulated, so full evaluation is O(groups + winner scans) and k-flip
/// delta evaluation is O(k) cache lookups plus k early-exit winner scans.
/// Kept bit-for-bit intact as the oracle the SoA kernel is differentially
/// tested against.
class SlotEvaluator : public Evaluator {
 public:
  explicit SlotEvaluator(const SlotProblem* problem);

  /// Flushes accumulated CacheStats to the default metric registry
  /// (imcf_evaluator_* counters, kernel="legacy").
  ~SlotEvaluator() override;

  Objectives Evaluate(const Solution& s) const override;
  Objectives EvaluateWithFlips(Solution* s, const Objectives& base,
                               std::span<const int> flips) const override;
  void ApplyFlips(Solution* s, std::span<const int> flips) const override;
  FlipDelta SingleFlipDelta(const Solution& s,
                            int rule_index) const override;
  Objectives NoRuleObjectives() const override;
  Objectives AllRulesObjectives() const override;
  const char* kernel_name() const override { return "legacy"; }

  bool IsActive(int rule_index) const override {
    return rule_index >= 0 &&
           rule_index < static_cast<int>(active_of_rule_.size()) &&
           active_of_rule_[static_cast<size_t>(rule_index)] >= 0;
  }

 private:
  /// Position in members_[group] of the winning member under `s`, or -1
  /// when no member is adopted. Members are sorted by rule_index
  /// descending, so the scan stops at the first adopted member.
  int WinnerPos(const Solution& s, int group) const;

  /// Winner position of `group` when `rule_index` is flipped on top of `s`
  /// (without mutating `s`).
  int WinnerPosFlippedOne(const Solution& s, int group, int rule_index) const;

  /// Pre-tabulated contribution of `group` when members_[group][winner_pos]
  /// wins (winner_pos == -1 selects the no-winner entry).
  const Objectives& GroupContribution(int group, int winner_pos) const {
    return contrib_[static_cast<size_t>(
        contrib_offset_[static_cast<size_t>(group)] + 1 + winner_pos)];
  }

  /// Full evaluation without touching the cache (used by the degenerate
  /// many-groups fallback, which evaluates a transient flipped copy).
  Objectives EvaluateNoSync(const Solution& s) const;

  /// Whether the cached contribution of `group` is valid for `s` (the
  /// cache mirror agrees with `s` on every member bit of the group).
  bool GroupFresh(const Solution& s, int group) const;

  /// Recomputes and stores the cache entry of `group` for `*s` and aligns
  /// the cache mirror's member bits.
  void RefreshGroup(const Solution& s, int group) const;

  /// active-rule indices per group, sorted by rule_index descending.
  std::vector<std::vector<int>> members_;
  /// rule_index -> position in problem_->active (or -1 if inactive).
  std::vector<int> active_of_rule_;
  /// Winner-contribution table: for group g, contrib_[offset[g]] is the
  /// no-winner contribution and contrib_[offset[g] + 1 + k] the
  /// contribution when members_[g][k] wins.
  std::vector<Objectives> contrib_;
  std::vector<int> contrib_offset_;

  // Incremental cache (see header comment). `cache_solution_` mirrors the
  // solution the cache was last synchronized with; freshness is checked
  // per group on the member bits only, so the cache self-heals when a
  // caller mutates the solution without ApplyFlips.
  mutable Solution cache_solution_;
  mutable std::vector<Objectives> group_cache_;
  mutable std::vector<int> group_winner_;
  mutable std::vector<int> touched_scratch_;
};

}  // namespace core
}  // namespace imcf

#endif  // IMCF_CORE_EVALUATOR_H_
