#include "core/baselines.h"

namespace imcf {
namespace core {

PlanOutcome NoRulePlanner::PlanSlot(const Evaluator& evaluator,
                                    Rng* rng) const {
  (void)rng;
  const SlotProblem& problem = evaluator.problem();
  PlanOutcome outcome;
  outcome.solution = Solution(static_cast<size_t>(problem.n_rules));
  outcome.objectives = evaluator.NoRuleObjectives();
  outcome.feasible = outcome.objectives.FeasibleUnder(problem.budget_kwh);
  return outcome;
}

PlanOutcome MetaRulePlanner::PlanSlot(const Evaluator& evaluator,
                                      Rng* rng) const {
  (void)rng;
  const SlotProblem& problem = evaluator.problem();
  PlanOutcome outcome;
  outcome.solution = Solution(static_cast<size_t>(problem.n_rules), 1);
  outcome.objectives = evaluator.AllRulesObjectives();
  outcome.feasible = outcome.objectives.FeasibleUnder(problem.budget_kwh);
  return outcome;
}

}  // namespace core
}  // namespace imcf
