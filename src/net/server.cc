#include "net/server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "net/socket_util.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace imcf {
namespace net {

namespace {

/// Wire front-door instrumentation (the imcf_net_* family), resolved once.
struct NetMetrics {
  obs::Gauge* connections;
  obs::Counter* connections_total;
  obs::Counter* frames_in;
  obs::Counter* frames_out;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* decode_errors;
  obs::Counter* shed_replies;
  obs::Counter* idle_closes;
  obs::Counter* overflow_closes;

  static const NetMetrics& Get() {
    static const NetMetrics* m = [] {
      auto& reg = obs::MetricRegistry::Default();
      auto* nm = new NetMetrics();
      nm->connections = reg.GetGauge("imcf_net_connections",
                                     "Wire connections currently open");
      nm->connections_total = reg.GetCounter(
          "imcf_net_connections_total", "Wire connections accepted");
      nm->frames_in = reg.GetCounter("imcf_net_frames_in_total",
                                     "Frames decoded off the wire");
      nm->frames_out = reg.GetCounter("imcf_net_frames_out_total",
                                      "Frames queued onto the wire");
      nm->bytes_in =
          reg.GetCounter("imcf_net_bytes_in_total", "Bytes read off sockets");
      nm->bytes_out = reg.GetCounter("imcf_net_bytes_out_total",
                                     "Bytes written to sockets");
      nm->decode_errors = reg.GetCounter(
          "imcf_net_decode_errors_total",
          "Malformed frames or payloads rejected by the strict decoder");
      nm->shed_replies = reg.GetCounter(
          "imcf_net_shed_replies_total",
          "Wire-level SHED replies (admission backpressure)");
      nm->idle_closes = reg.GetCounter("imcf_net_idle_closes_total",
                                       "Connections closed by idle timeout");
      nm->overflow_closes = reg.GetCounter(
          "imcf_net_overflow_closes_total",
          "Connections closed for exceeding the write-buffer cap");
      return nm;
    }();
    return *m;
  }
};

int64_t MonotonicMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WireServer::WireServer(serve::FleetService* service, WireServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.epoll_wait_ms <= 0) options_.epoll_wait_ms = 50;
  if (options_.max_connections < 1) options_.max_connections = 1;
}

Result<std::unique_ptr<WireServer>> WireServer::Start(
    serve::FleetService* service, WireServerOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("wire server: null service");
  }
  auto server = std::unique_ptr<WireServer>(
      new WireServer(service, std::move(options)));
  std::string error;
  server->listen_fd_ =
      BindListen(server->options_.port, /*backlog=*/128, &server->port_,
                 &error);
  if (server->listen_fd_ < 0) {
    return Status::IOError("wire server: " + error);
  }
  if (!SetNonBlocking(server->listen_fd_)) {
    CloseQuietly(server->listen_fd_);
    return Status::IOError("wire server: fcntl O_NONBLOCK failed");
  }
  server->epoll_fd_ = ::epoll_create1(0);
  if (server->epoll_fd_ < 0) {
    CloseQuietly(server->listen_fd_);
    return Status::IOError(std::string("wire server: epoll_create1: ") +
                           std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = server->listen_fd_;
  if (::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->listen_fd_,
                  &ev) != 0) {
    CloseQuietly(server->listen_fd_);
    CloseQuietly(server->epoll_fd_);
    return Status::IOError(std::string("wire server: epoll_ctl: ") +
                           std::strerror(errno));
  }
  server->running_.store(true, std::memory_order_release);
  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  return server;
}

WireServer::~WireServer() { Stop(); }

void WireServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  // Clean drain: everything the wire admitted but has not answered yet is
  // executed now, so accepted work is never silently dropped. Responses go
  // out as far as the sockets will take them without blocking the stop.
  if (!pending_.empty()) DrainPending();
  for (auto& [fd, conn] : connections_) {
    if (conn.out_off < conn.outbuf.size()) {
      // Final flush on a closing socket: switch to blocking best-effort.
      (void)SendAll(fd, conn.outbuf.data() + conn.out_off,
                    conn.outbuf.size() - conn.out_off);
    }
    CloseQuietly(fd);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  NetMetrics::Get().connections->Add(
      -static_cast<double>(connections_.size()));
  connections_.clear();
  pending_.clear();
  if (listen_fd_ >= 0) {
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    CloseQuietly(epoll_fd_);
    epoll_fd_ = -1;
  }
  port_ = 0;
}

void WireServer::Serve() {
  std::vector<epoll_event> events(128);
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               options_.epoll_wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      IMCF_LOG(kWarning) << "wire server: epoll_wait: "
                         << std::strerror(errno);
      break;
    }
    const int64_t now_ms = MonotonicMs();
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == listen_fd_) {
        AcceptReady(now_ms);
        continue;
      }
      auto it = connections_.find(ev.data.fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = it->second;
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn.fd);
        continue;
      }
      if (ev.events & EPOLLIN) {
        ReadReady(conn, now_ms);
        // ReadReady may close; re-find before touching the writer side.
        if (connections_.find(ev.data.fd) == connections_.end()) continue;
      }
      if (ev.events & EPOLLOUT) FlushWrites(connections_[ev.data.fd]);
    }
    // Admission happened frame by frame above; execution happens once per
    // loop batch so the worker pool sees the whole wavefront at once.
    if (!pending_.empty()) DrainPending();
    FlushAll();
    SweepIdle(now_ms);
  }
}

void WireServer::AcceptReady(int64_t now_ms) {
  const NetMetrics& metrics = NetMetrics::Get();
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure; epoll will re-arm
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      CloseQuietly(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      CloseQuietly(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseQuietly(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.gen = next_gen_++;
    conn.last_active_ms = now_ms;
    connections_.emplace(fd, std::move(conn));
    metrics.connections_total->Increment();
    metrics.connections->Add(1.0);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WireServer::ReadReady(Connection& conn, int64_t now_ms) {
  const NetMetrics& metrics = NetMetrics::Get();
  char buf[64 * 1024];
  while (true) {
    const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn.fd);
      return;
    }
    if (got == 0) {
      CloseConnection(conn.fd);
      return;
    }
    conn.last_active_ms = now_ms;
    metrics.bytes_in->Increment(got);
    if (!conn.reader.Feed(std::string_view(buf, static_cast<size_t>(got)))) {
      // Unframeable flood: bounded cost, then cut off.
      metrics.decode_errors->Increment();
      std::string payload;
      EncodeErrorPayload(0, Status::InvalidArgument("wire: unframed flood"),
                         &payload);
      QueueFrame(conn, FrameType::kError, payload);
      conn.close_after_flush = true;
      FlushWrites(conn);
      return;
    }
    while (true) {
      Result<std::optional<Frame>> next = conn.reader.Next();
      if (!next.ok()) {
        // Frame-level corruption: the stream may be misaligned, so answer
        // once (best effort) and close.
        metrics.decode_errors->Increment();
        std::string payload;
        EncodeErrorPayload(0, next.status(), &payload);
        QueueFrame(conn, FrameType::kError, payload);
        conn.close_after_flush = true;
        FlushWrites(conn);
        return;
      }
      if (!next->has_value()) break;
      HandleFrame(conn, **next);
    }
  }
}

void WireServer::HandleFrame(Connection& conn, const Frame& frame) {
  const NetMetrics& metrics = NetMetrics::Get();
  metrics.frames_in->Increment();
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  if (frame.type != FrameType::kRequest) {
    // Clients send requests; anything else is a protocol violation in a
    // well-formed frame — answerable in-band, stream still aligned.
    metrics.decode_errors->Increment();
    std::string payload;
    EncodeErrorPayload(
        0, Status::InvalidArgument("wire: client sent non-request frame"),
        &payload);
    QueueFrame(conn, FrameType::kError, payload);
    return;
  }
  // The receive half of the wire span pair: decode + admission. It needs
  // an explicit root — the epoll thread has no ambient request context —
  // and the request's deterministic trace id does not exist until Submit
  // admits it, so the span roots an ad-hoc transport trace (the minted-id
  // pattern; ids are masked as measurements in canonical comparisons) and
  // links the request id as an arg once assigned. The execute half of the
  // request's own trace is parented by Submit.
  IMCF_TRACE_SPAN_IN(recv_span, "net.recv", "net",
                     obs::Tracer::Root(obs::Tracer::MintTraceId()));
  Result<WireRequest> decoded = DecodeRequestPayload(frame.payload);
  if (!decoded.ok()) {
    recv_span.Detail("decode_error");
    metrics.decode_errors->Increment();
    std::string payload;
    EncodeErrorPayload(0, decoded.status(), &payload);
    QueueFrame(conn, FrameType::kError, payload);
    return;
  }
  WireRequest& wire = *decoded;
  recv_span.Detail(serve::RequestKindName(wire.request.kind));
  if (wire.request.issue_time > now_) now_ = wire.request.issue_time;
  uint64_t service_id = 0;
  std::optional<serve::Response> immediate =
      service_->Submit(std::move(wire.request), &service_id);
  recv_span.Arg("request_id", static_cast<int64_t>(service_id));
  if (!immediate.has_value()) {
    pending_[service_id] =
        PendingReply{conn.fd, conn.gen, wire.client_id};
    return;
  }
  if (immediate->outcome == serve::ServeOutcome::kShed) {
    // Backpressure maps to a first-class wire reply: tiny frame, the
    // service's deterministic retry_after hint, no connection penalty.
    metrics.shed_replies->Increment();
    std::string payload;
    EncodeShedPayload(wire.client_id, immediate->retry_after_seconds,
                      &payload);
    QueueFrame(conn, FrameType::kShed, payload);
    return;
  }
  std::string payload;
  EncodeResponsePayload(wire.client_id, *immediate, &payload);
  QueueFrame(conn, FrameType::kResponse, payload);
}

void WireServer::DrainPending() {
  const std::vector<serve::Response> responses = service_->Drain(now_);
  for (const serve::Response& response : responses) {
    auto it = pending_.find(response.id);
    if (it == pending_.end()) continue;  // another caller's request
    const PendingReply reply = it->second;
    pending_.erase(it);
    auto conn_it = connections_.find(reply.fd);
    if (conn_it == connections_.end() || conn_it->second.gen != reply.gen) {
      continue;  // connection closed while the request was queued
    }
    // The send half joins the request's own deterministic trace as a
    // second root: submit -> execute -> ... -> net.send reads as one
    // request tree in the Perfetto view.
    IMCF_TRACE_SPAN_IN(
        send_span, "net.send", "net",
        obs::Tracer::Root(serve::FleetService::TraceIdFor(response.id)));
    send_span.Detail(serve::ServeOutcomeName(response.outcome));
    std::string payload;
    EncodeResponsePayload(reply.client_id, response, &payload);
    QueueFrame(conn_it->second, FrameType::kResponse, payload);
  }
}

void WireServer::FlushAll() {
  // Two passes because FlushWrites may close (erase) a connection, which
  // would invalidate a live map iterator.
  std::vector<int> dirty;
  for (const auto& [fd, conn] : connections_) {
    if (conn.out_off < conn.outbuf.size() || conn.close_after_flush) {
      dirty.push_back(fd);
    }
  }
  for (int fd : dirty) {
    auto it = connections_.find(fd);
    if (it != connections_.end()) FlushWrites(it->second);
  }
}

void WireServer::QueueFrame(Connection& conn, FrameType type,
                            std::string_view payload) {
  NetMetrics::Get().frames_out->Increment();
  conn.outbuf += EncodeFrame(type, payload);
}

void WireServer::FlushWrites(Connection& conn) {
  const NetMetrics& metrics = NetMetrics::Get();
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t sent =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn.fd);
      return;
    }
    metrics.bytes_out->Increment(sent);
    conn.out_off += static_cast<size_t>(sent);
  }
  if (conn.out_off >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
      CloseConnection(conn.fd);
      return;
    }
    if (conn.epollout_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn.fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
      conn.epollout_armed = false;
    }
    return;
  }
  // Reclaim the flushed prefix once it dominates the buffer.
  if (conn.out_off > conn.outbuf.size() / 2) {
    conn.outbuf.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  if (conn.outbuf.size() - conn.out_off > options_.max_write_buffer_bytes) {
    // The peer reads slower than it submits; buffering without bound is
    // the one thing the front door must never do.
    metrics.overflow_closes->Increment();
    CloseConnection(conn.fd);
    return;
  }
  if (!conn.epollout_armed) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.epollout_armed = true;
  }
}

void WireServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  CloseQuietly(fd);
  connections_.erase(it);
  NetMetrics::Get().connections->Add(-1.0);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  // Pending replies to this connection stay in the map; the routing step
  // discards them by generation mismatch / missing fd.
}

void WireServer::SweepIdle(int64_t now_ms) {
  if (options_.idle_timeout_ms <= 0) return;
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    if (now_ms - conn.last_active_ms >= options_.idle_timeout_ms) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    NetMetrics::Get().idle_closes->Increment();
    CloseConnection(fd);
  }
}

}  // namespace net
}  // namespace imcf
