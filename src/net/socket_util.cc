#include "net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace imcf {
namespace net {

int BindListen(int port, int backlog, int* bound_port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    CloseQuietly(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    CloseQuietly(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error) *error = std::string("getsockname: ") + std::strerror(errno);
    CloseQuietly(fd);
    return -1;
  }
  if (bound_port) *bound_port = static_cast<int>(ntohs(addr.sin_port));
  return fd;
}

int ConnectLoopback(int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error) *error = std::string("connect: ") + std::strerror(errno);
    CloseQuietly(fd);
    return -1;
  }
  return fd;
}

ssize_t RecvSome(int fd, void* buf, size_t n) {
  ssize_t got;
  do {
    got = ::recv(fd, buf, n, 0);
  } while (got < 0 && errno == EINTR);
  return got;
}

bool SendAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < n) {
    ssize_t sent = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    off += static_cast<size_t>(sent);
  }
  return true;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void CloseQuietly(int fd) {
  const int saved = errno;
  ::close(fd);
  errno = saved;
}

}  // namespace net
}  // namespace imcf
