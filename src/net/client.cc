#include "net/client.h"

#include <utility>

#include "net/socket_util.h"

namespace imcf {
namespace net {

WireClient::WireClient(int fd, WireClientOptions options)
    : fd_(fd), options_(options) {}

Result<std::unique_ptr<WireClient>> WireClient::Connect(
    int port, WireClientOptions options) {
  std::string error;
  const int fd = ConnectLoopback(port, &error);
  if (fd < 0) return Status::IOError("wire client: " + error);
  return std::unique_ptr<WireClient>(new WireClient(fd, options));
}

WireClient::~WireClient() { CloseSocket(); }

void WireClient::CloseSocket() {
  if (fd_ >= 0) {
    CloseQuietly(fd_);
    fd_ = -1;
  }
}

Result<uint64_t> WireClient::Send(const serve::Request& request) {
  if (fd_ < 0) return Status::IOError("wire client: not connected");
  const uint64_t client_id = next_client_id_++;
  std::string payload;
  EncodeRequestPayload(client_id, request, &payload);
  const std::string frame = EncodeFrame(FrameType::kRequest, payload);
  if (!SendAll(fd_, frame.data(), frame.size())) {
    CloseSocket();
    return Status::IOError("wire client: send failed");
  }
  return client_id;
}

bool WireClient::SendBytes(std::string_view bytes) {
  if (fd_ < 0) return false;
  if (!SendAll(fd_, bytes.data(), bytes.size())) {
    CloseSocket();
    return false;
  }
  return true;
}

Result<Frame> WireClient::NextFrame() {
  if (fd_ < 0) return Status::IOError("wire client: not connected");
  while (true) {
    Result<std::optional<Frame>> next = reader_.Next();
    if (!next.ok()) {
      CloseSocket();
      return next.status();
    }
    if (next->has_value()) return std::move(**next);
    char buf[16 * 1024];
    const ssize_t got = RecvSome(fd_, buf, sizeof(buf));
    if (got < 0) {
      CloseSocket();
      return Status::IOError("wire client: recv failed");
    }
    if (got == 0) {
      CloseSocket();
      return Status::IOError("wire client: connection closed by server");
    }
    if (!reader_.Feed(std::string_view(buf, static_cast<size_t>(got)))) {
      CloseSocket();
      return Status::IOError("wire client: unframed server bytes");
    }
  }
}

Result<WireResponse> WireClient::Receive() {
  IMCF_ASSIGN_OR_RETURN(Frame frame, NextFrame());
  switch (frame.type) {
    case FrameType::kResponse:
      return DecodeResponsePayload(frame.payload);
    case FrameType::kShed:
      return DecodeShedPayload(frame.payload);
    case FrameType::kError: {
      // An in-band rejection: surface the server's status to the caller.
      Result<WireResponse> decoded = DecodeErrorPayload(frame.payload);
      if (!decoded.ok()) {
        CloseSocket();
        return decoded.status();
      }
      return Status::InvalidArgument("wire server rejected request: " +
                                     decoded->response.status.message());
    }
    case FrameType::kRequest:
      break;
  }
  CloseSocket();
  return Status::IOError("wire client: unexpected frame type from server");
}

Result<serve::Response> WireClient::Call(serve::Request request) {
  for (int attempt = 0; /* exits via return */; ++attempt) {
    IMCF_ASSIGN_OR_RETURN(const uint64_t client_id, Send(request));
    IMCF_ASSIGN_OR_RETURN(WireResponse reply, Receive());
    if (reply.client_id != client_id) {
      CloseSocket();
      return Status::Internal("wire client: correlation id mismatch");
    }
    if (reply.response.outcome != serve::ServeOutcome::kShed ||
        attempt >= options_.max_shed_retries) {
      return std::move(reply.response);
    }
    // Honour the backpressure hint in virtual time: the retried request
    // is issued retry_after seconds later, exactly as a live submitter
    // sleeping that long would reissue it.
    SimTime step = reply.response.retry_after_seconds;
    if (step <= 0) step = 1;
    request.issue_time += step;
    if (request.deadline > 0 && request.issue_time > request.deadline) {
      // The hint pushes past the deadline; retrying cannot succeed.
      return std::move(reply.response);
    }
  }
}

}  // namespace net
}  // namespace imcf
