// Shared POSIX socket plumbing for the repo's two network surfaces: the
// obs status server (HTTP introspection) and the net wire server (the
// binary fleet front door). Both need the same four pieces — bind/listen
// with ephemeral-port readback, EINTR-restarted receives, short-write-safe
// sends, and non-blocking mode — and duplicating the loops is exactly how
// one of them ends up with the EINTR bug the other already fixed.
//
// Deliberately a dependency leaf (std + libc only): obs sits below common
// in the layering, so errors surface as int/bool + message string rather
// than common/Status. The net layer proper (wire/server/client) wraps
// these into Status at its own boundary.

#ifndef IMCF_NET_SOCKET_UTIL_H_
#define IMCF_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <string>

#include <sys/types.h>

namespace imcf {
namespace net {

/// Creates a TCP socket bound to 0.0.0.0:`port` (0 = ephemeral) and
/// listening with `backlog`. On success returns the fd and writes the
/// actually-bound port (the ephemeral readback) to *bound_port. On failure
/// returns -1 with *error describing the failing call.
int BindListen(int port, int backlog, int* bound_port, std::string* error);

/// Blocking connect to 127.0.0.1:`port`. Returns the fd, or -1 with
/// *error filled.
int ConnectLoopback(int port, std::string* error);

/// recv() restarted on EINTR. Returns >0 (bytes), 0 (peer closed) or -1
/// (error other than EINTR).
ssize_t RecvSome(int fd, void* buf, size_t n);

/// Sends all of [data, data+n), restarting on EINTR and continuing over
/// short writes (a small socket buffer or slow reader makes partial sends
/// routine, not exceptional). MSG_NOSIGNAL so a dead peer surfaces as an
/// error, never SIGPIPE. Returns false once the peer is gone.
bool SendAll(int fd, const void* data, size_t n);

/// Puts `fd` into non-blocking mode. Returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// close() that preserves errno (for error-path cleanup).
void CloseQuietly(int fd);

}  // namespace net
}  // namespace imcf

#endif  // IMCF_NET_SOCKET_UTIL_H_
