#include "net/wire.h"

#include "common/crc32.h"
#include "storage/coding.h"

namespace imcf {
namespace net {

namespace {

/// Reads one varint and range-checks it into a uint8-backed enum value.
Result<uint8_t> ReadEnum(Decoder* dec, uint64_t limit, const char* what) {
  IMCF_ASSIGN_OR_RETURN(uint64_t raw, dec->ReadVarint64());
  if (raw >= limit) {
    return Status::InvalidArgument(std::string("wire: bad ") + what);
  }
  return static_cast<uint8_t>(raw);
}

Result<std::string> ReadCappedString(Decoder* dec, size_t cap,
                                     const char* what) {
  IMCF_ASSIGN_OR_RETURN(std::string_view s, ReadLengthPrefixed(dec));
  if (s.size() > cap) {
    return Status::InvalidArgument(std::string("wire: oversized ") + what);
  }
  return std::string(s);
}

void PutBool(std::string* out, bool v) {
  PutVarint64(out, v ? 1 : 0);
}

Result<bool> ReadBool(Decoder* dec, const char* what) {
  IMCF_ASSIGN_OR_RETURN(uint8_t v, ReadEnum(dec, 2, what));
  return v != 0;
}

void EncodeRecipe(const rules::TriggerRule& rule, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(rule.field));
  PutVarint64(out, static_cast<uint64_t>(rule.op));
  PutDouble(out, rule.threshold);
  PutVarint64(out, static_cast<uint64_t>(rule.season));
  PutVarint64(out, static_cast<uint64_t>(rule.sky));
  PutBool(out, rule.door_open);
  PutVarint64(out, static_cast<uint64_t>(rule.action));
  PutDouble(out, rule.action_value);
}

Result<rules::TriggerRule> DecodeRecipe(Decoder* dec) {
  rules::TriggerRule rule;
  IMCF_ASSIGN_OR_RETURN(uint8_t field, ReadEnum(dec, 5, "recipe field"));
  rule.field = static_cast<rules::TriggerField>(field);
  IMCF_ASSIGN_OR_RETURN(uint8_t op, ReadEnum(dec, 3, "recipe op"));
  rule.op = static_cast<rules::TriggerOp>(op);
  IMCF_ASSIGN_OR_RETURN(rule.threshold, ReadDouble(dec));
  IMCF_ASSIGN_OR_RETURN(uint8_t season, ReadEnum(dec, 4, "recipe season"));
  rule.season = static_cast<weather::Season>(season);
  IMCF_ASSIGN_OR_RETURN(uint8_t sky, ReadEnum(dec, 2, "recipe sky"));
  rule.sky = static_cast<weather::Sky>(sky);
  IMCF_ASSIGN_OR_RETURN(rule.door_open, ReadBool(dec, "recipe door"));
  IMCF_ASSIGN_OR_RETURN(uint8_t action, ReadEnum(dec, 3, "recipe action"));
  rule.action = static_cast<rules::RuleAction>(action);
  IMCF_ASSIGN_OR_RETURN(rule.action_value, ReadDouble(dec));
  return rule;
}

Status RejectTrailing(const Decoder& dec, const char* what) {
  if (!dec.empty()) {
    return Status::InvalidArgument(std::string("wire: trailing bytes after ") +
                                   what);
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kWireHeaderBytes + payload.size() + kWireTrailerBytes);
  frame.push_back(static_cast<char>(kWireMagic0));
  frame.push_back(static_cast<char>(kWireMagic1));
  frame.push_back(static_cast<char>(kWireVersion));
  frame.push_back(static_cast<char>(type));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload.data(), payload.size());
  const uint32_t crc = Crc32c(0, frame.data(), frame.size());
  PutFixed32(&frame, MaskCrc(crc));
  return frame;
}

void EncodeRequestPayload(uint64_t client_id, const serve::Request& request,
                          std::string* out) {
  PutVarint64(out, client_id);
  PutLengthPrefixed(out, request.tenant);
  PutVarint64(out, static_cast<uint64_t>(request.kind));
  PutVarintSigned64(out, request.issue_time);
  PutVarintSigned64(out, request.deadline);
  switch (request.kind) {
    case serve::RequestKind::kPlan:
      PutVarint64(out, static_cast<uint64_t>(request.plan.policy));
      PutVarintSigned64(out, request.plan.rep);
      break;
    case serve::RequestKind::kCommand:
      PutVarintSigned64(out, request.command.unit);
      PutVarint64(out, static_cast<uint64_t>(request.command.type));
      PutDouble(out, request.command.value);
      PutVarintSigned64(out, request.command.time);
      break;
    case serve::RequestKind::kQuery:
      PutVarint64(out, static_cast<uint64_t>(request.query.kind));
      PutVarintSigned64(out, request.query.unit);
      break;
    case serve::RequestKind::kMrtUpdate: {
      const serve::MrtUpdateRequest& u = request.mrt_update;
      PutVarint64(out, u.seed);
      PutDouble(out, u.mrt_variation);
      PutDouble(out, u.budget_kwh);
      PutBool(out, u.set_recipes);
      PutVarint64(out, static_cast<uint64_t>(u.extra_recipes.size()));
      for (const rules::TriggerRule& rule : u.extra_recipes) {
        EncodeRecipe(rule, out);
      }
      break;
    }
  }
}

Result<WireRequest> DecodeRequestPayload(std::string_view payload) {
  Decoder dec(payload);
  WireRequest wire;
  IMCF_ASSIGN_OR_RETURN(wire.client_id, dec.ReadVarint64());
  IMCF_ASSIGN_OR_RETURN(
      wire.request.tenant,
      ReadCappedString(&dec, kMaxTenantBytes, "tenant id"));
  IMCF_ASSIGN_OR_RETURN(
      uint8_t kind, ReadEnum(&dec, serve::kNumRequestKinds, "request kind"));
  wire.request.kind = static_cast<serve::RequestKind>(kind);
  IMCF_ASSIGN_OR_RETURN(wire.request.issue_time, dec.ReadVarintSigned64());
  IMCF_ASSIGN_OR_RETURN(wire.request.deadline, dec.ReadVarintSigned64());
  switch (wire.request.kind) {
    case serve::RequestKind::kPlan: {
      IMCF_ASSIGN_OR_RETURN(uint8_t policy, ReadEnum(&dec, 6, "plan policy"));
      wire.request.plan.policy = static_cast<sim::Policy>(policy);
      IMCF_ASSIGN_OR_RETURN(int64_t rep, dec.ReadVarintSigned64());
      wire.request.plan.rep = static_cast<int>(rep);
      break;
    }
    case serve::RequestKind::kCommand: {
      IMCF_ASSIGN_OR_RETURN(int64_t unit, dec.ReadVarintSigned64());
      wire.request.command.unit = static_cast<int>(unit);
      IMCF_ASSIGN_OR_RETURN(uint8_t type, ReadEnum(&dec, 3, "command type"));
      wire.request.command.type = static_cast<devices::CommandType>(type);
      IMCF_ASSIGN_OR_RETURN(wire.request.command.value, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(wire.request.command.time,
                            dec.ReadVarintSigned64());
      break;
    }
    case serve::RequestKind::kQuery: {
      IMCF_ASSIGN_OR_RETURN(uint8_t qkind, ReadEnum(&dec, 2, "query kind"));
      wire.request.query.kind = static_cast<serve::QueryKind>(qkind);
      IMCF_ASSIGN_OR_RETURN(int64_t unit, dec.ReadVarintSigned64());
      wire.request.query.unit = static_cast<int>(unit);
      break;
    }
    case serve::RequestKind::kMrtUpdate: {
      serve::MrtUpdateRequest& u = wire.request.mrt_update;
      IMCF_ASSIGN_OR_RETURN(u.seed, dec.ReadVarint64());
      IMCF_ASSIGN_OR_RETURN(u.mrt_variation, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(u.budget_kwh, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(u.set_recipes, ReadBool(&dec, "set_recipes"));
      IMCF_ASSIGN_OR_RETURN(uint64_t n, dec.ReadVarint64());
      if (n > kMaxRecipes) {
        return Status::InvalidArgument("wire: too many recipes");
      }
      u.extra_recipes.reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) {
        IMCF_ASSIGN_OR_RETURN(rules::TriggerRule rule, DecodeRecipe(&dec));
        u.extra_recipes.push_back(rule);
      }
      break;
    }
  }
  IMCF_RETURN_IF_ERROR(RejectTrailing(dec, "request"));
  return wire;
}

void EncodeResponsePayload(uint64_t client_id,
                           const serve::Response& response,
                           std::string* out) {
  PutVarint64(out, client_id);
  PutVarint64(out, response.id);
  PutLengthPrefixed(out, response.tenant);
  PutVarint64(out, static_cast<uint64_t>(response.kind));
  PutVarint64(out, static_cast<uint64_t>(response.outcome));
  PutVarint64(out, static_cast<uint64_t>(response.status.code()));
  std::string_view message = response.status.message();
  if (message.size() > kMaxMessageBytes) {
    message = message.substr(0, kMaxMessageBytes);
  }
  PutLengthPrefixed(out, message);
  PutVarintSigned64(out, response.retry_after_seconds);
  PutVarintSigned64(out, response.virtual_latency_seconds);
  PutBool(out, response.had_deadline);
  PutVarintSigned64(out, response.wall_ns);
  switch (response.kind) {
    case serve::RequestKind::kPlan:
      PutDouble(out, response.plan.fce_pct);
      PutDouble(out, response.plan.fe_kwh);
      PutBool(out, response.plan.within_budget);
      PutVarintSigned64(out, response.plan.commands_issued);
      PutVarintSigned64(out, response.plan.commands_dropped);
      break;
    case serve::RequestKind::kCommand:
      PutBool(out, response.command_delivered);
      PutVarintSigned64(out, response.command_attempts);
      break;
    case serve::RequestKind::kQuery: {
      const serve::TenantStatus& s = response.tenant_status;
      PutVarintSigned64(out, s.plans_served);
      PutVarintSigned64(out, s.commands_served);
      PutDouble(out, s.budget_kwh);
      PutVarintSigned64(out, s.devices);
      PutVarintSigned64(out, s.units);
      const serve::ContextView& c = response.context;
      PutVarint64(out, c.fields);
      PutVarintSigned64(out, c.time);
      PutVarintSigned64(out, c.season);
      PutVarintSigned64(out, c.sky);
      PutDouble(out, c.outdoor_temp_c);
      PutDouble(out, c.daylight);
      PutDouble(out, c.ambient_temp_c);
      PutDouble(out, c.ambient_light_pct);
      PutBool(out, c.door_open);
      break;
    }
    case serve::RequestKind::kMrtUpdate:
      break;  // outcome + status carry everything
  }
}

Result<WireResponse> DecodeResponsePayload(std::string_view payload) {
  Decoder dec(payload);
  WireResponse wire;
  serve::Response& r = wire.response;
  IMCF_ASSIGN_OR_RETURN(wire.client_id, dec.ReadVarint64());
  IMCF_ASSIGN_OR_RETURN(r.id, dec.ReadVarint64());
  IMCF_ASSIGN_OR_RETURN(r.tenant,
                        ReadCappedString(&dec, kMaxTenantBytes, "tenant id"));
  IMCF_ASSIGN_OR_RETURN(
      uint8_t kind, ReadEnum(&dec, serve::kNumRequestKinds, "response kind"));
  r.kind = static_cast<serve::RequestKind>(kind);
  IMCF_ASSIGN_OR_RETURN(
      uint8_t outcome,
      ReadEnum(&dec, serve::kNumServeOutcomes, "response outcome"));
  r.outcome = static_cast<serve::ServeOutcome>(outcome);
  IMCF_ASSIGN_OR_RETURN(uint8_t code, ReadEnum(&dec, 10, "status code"));
  IMCF_ASSIGN_OR_RETURN(
      std::string message,
      ReadCappedString(&dec, kMaxMessageBytes, "status message"));
  r.status = Status(static_cast<StatusCode>(code), std::move(message));
  IMCF_ASSIGN_OR_RETURN(r.retry_after_seconds, dec.ReadVarintSigned64());
  IMCF_ASSIGN_OR_RETURN(r.virtual_latency_seconds, dec.ReadVarintSigned64());
  IMCF_ASSIGN_OR_RETURN(r.had_deadline, ReadBool(&dec, "had_deadline"));
  IMCF_ASSIGN_OR_RETURN(r.wall_ns, dec.ReadVarintSigned64());
  switch (r.kind) {
    case serve::RequestKind::kPlan: {
      IMCF_ASSIGN_OR_RETURN(r.plan.fce_pct, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(r.plan.fe_kwh, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(r.plan.within_budget,
                            ReadBool(&dec, "within_budget"));
      IMCF_ASSIGN_OR_RETURN(r.plan.commands_issued, dec.ReadVarintSigned64());
      IMCF_ASSIGN_OR_RETURN(r.plan.commands_dropped,
                            dec.ReadVarintSigned64());
      break;
    }
    case serve::RequestKind::kCommand: {
      IMCF_ASSIGN_OR_RETURN(r.command_delivered, ReadBool(&dec, "delivered"));
      IMCF_ASSIGN_OR_RETURN(int64_t attempts, dec.ReadVarintSigned64());
      r.command_attempts = static_cast<int>(attempts);
      break;
    }
    case serve::RequestKind::kQuery: {
      serve::TenantStatus& s = r.tenant_status;
      IMCF_ASSIGN_OR_RETURN(s.plans_served, dec.ReadVarintSigned64());
      IMCF_ASSIGN_OR_RETURN(s.commands_served, dec.ReadVarintSigned64());
      IMCF_ASSIGN_OR_RETURN(s.budget_kwh, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(int64_t devices, dec.ReadVarintSigned64());
      s.devices = static_cast<int>(devices);
      IMCF_ASSIGN_OR_RETURN(int64_t units, dec.ReadVarintSigned64());
      s.units = static_cast<int>(units);
      serve::ContextView& c = r.context;
      IMCF_ASSIGN_OR_RETURN(uint64_t fields, dec.ReadVarint64());
      c.fields = static_cast<uint32_t>(fields);
      IMCF_ASSIGN_OR_RETURN(c.time, dec.ReadVarintSigned64());
      IMCF_ASSIGN_OR_RETURN(int64_t season, dec.ReadVarintSigned64());
      c.season = static_cast<int>(season);
      IMCF_ASSIGN_OR_RETURN(int64_t sky, dec.ReadVarintSigned64());
      c.sky = static_cast<int>(sky);
      IMCF_ASSIGN_OR_RETURN(c.outdoor_temp_c, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(c.daylight, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(c.ambient_temp_c, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(c.ambient_light_pct, ReadDouble(&dec));
      IMCF_ASSIGN_OR_RETURN(c.door_open, ReadBool(&dec, "door_open"));
      break;
    }
    case serve::RequestKind::kMrtUpdate:
      break;
  }
  IMCF_RETURN_IF_ERROR(RejectTrailing(dec, "response"));
  return wire;
}

void EncodeShedPayload(uint64_t client_id, SimTime retry_after_seconds,
                       std::string* out) {
  PutVarint64(out, client_id);
  PutVarintSigned64(out, retry_after_seconds);
}

Result<WireResponse> DecodeShedPayload(std::string_view payload) {
  Decoder dec(payload);
  WireResponse wire;
  IMCF_ASSIGN_OR_RETURN(wire.client_id, dec.ReadVarint64());
  IMCF_ASSIGN_OR_RETURN(wire.response.retry_after_seconds,
                        dec.ReadVarintSigned64());
  IMCF_RETURN_IF_ERROR(RejectTrailing(dec, "shed"));
  wire.response.outcome = serve::ServeOutcome::kShed;
  return wire;
}

void EncodeErrorPayload(uint64_t client_id, const Status& status,
                        std::string* out) {
  PutVarint64(out, client_id);
  PutVarint64(out, static_cast<uint64_t>(status.code()));
  std::string_view message = status.message();
  if (message.size() > kMaxMessageBytes) {
    message = message.substr(0, kMaxMessageBytes);
  }
  PutLengthPrefixed(out, message);
}

Result<WireResponse> DecodeErrorPayload(std::string_view payload) {
  Decoder dec(payload);
  WireResponse wire;
  IMCF_ASSIGN_OR_RETURN(wire.client_id, dec.ReadVarint64());
  IMCF_ASSIGN_OR_RETURN(uint8_t code, ReadEnum(&dec, 10, "status code"));
  IMCF_ASSIGN_OR_RETURN(
      std::string message,
      ReadCappedString(&dec, kMaxMessageBytes, "status message"));
  IMCF_RETURN_IF_ERROR(RejectTrailing(dec, "error"));
  wire.response.outcome = serve::ServeOutcome::kError;
  wire.response.status = Status(static_cast<StatusCode>(code),
                                std::move(message));
  return wire;
}

bool FrameReader::Feed(std::string_view data) {
  if (poisoned_) return false;
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data.data(), data.size());
  const size_t max_frame =
      kWireHeaderBytes + kMaxPayloadBytes + kWireTrailerBytes;
  if (buffer_.size() - consumed_ > max_frame) {
    // More unparsed bytes than any one legal frame: the peer is flooding
    // or desynchronized; either way the connection is done.
    poisoned_ = true;
    return false;
  }
  return true;
}

Result<std::optional<Frame>> FrameReader::Next() {
  if (poisoned_) {
    return Status::InvalidArgument("wire: stream poisoned");
  }
  const std::string_view data =
      std::string_view(buffer_).substr(consumed_);
  if (data.size() < kWireHeaderBytes) return std::optional<Frame>();
  if (static_cast<uint8_t>(data[0]) != kWireMagic0 ||
      static_cast<uint8_t>(data[1]) != kWireMagic1) {
    poisoned_ = true;
    return Status::InvalidArgument("wire: bad magic");
  }
  if (static_cast<uint8_t>(data[2]) != kWireVersion) {
    poisoned_ = true;
    return Status::InvalidArgument("wire: unsupported version");
  }
  const uint8_t type = static_cast<uint8_t>(data[3]);
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    poisoned_ = true;
    return Status::InvalidArgument("wire: unknown frame type");
  }
  const uint32_t payload_len = GetFixed32(data.data() + 4);
  if (payload_len > kMaxPayloadBytes) {
    poisoned_ = true;
    return Status::InvalidArgument("wire: oversized payload length");
  }
  const size_t total =
      kWireHeaderBytes + static_cast<size_t>(payload_len) + kWireTrailerBytes;
  if (data.size() < total) return std::optional<Frame>();
  const uint32_t stored =
      UnmaskCrc(GetFixed32(data.data() + total - kWireTrailerBytes));
  const uint32_t actual =
      Crc32c(0, data.data(), total - kWireTrailerBytes);
  if (stored != actual) {
    poisoned_ = true;
    return Status::Corruption("wire: checksum mismatch");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(data.data() + kWireHeaderBytes, payload_len);
  consumed_ += total;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace net
}  // namespace imcf
