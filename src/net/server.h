// WireServer: the epoll-based non-blocking network front door of the
// FleetService.
//
// One serving thread runs the whole front end — accept, per-connection
// frame reassembly, request decode, admission, drain, response encode,
// buffered writes — against non-blocking sockets multiplexed by epoll.
// Heavy work (planning) still happens inside FleetService::Drain, which
// fans out on the service's worker pool; the epoll thread only moves
// bytes and frames. The serving pipeline per loop iteration:
//
//   1. epoll_wait: readable connections are drained into their
//      FrameReaders; every complete kRequest frame is decoded (strictly,
//      bounded — see wire.h) and submitted to the service.
//        - admission shed  -> immediate wire-level kShed reply carrying
//          the service's deterministic retry_after hint (backpressure is
//          an answer, not a dropped byte)
//        - immediate reject (unknown tenant) -> kResponse
//        - queued          -> the request id is remembered against the
//          connection for the drain step
//        - malformed payload in a checksum-valid frame -> kError reply,
//          connection stays (the stream is still aligned)
//        - frame-level corruption (bad magic / version / length /
//          checksum) -> best-effort kError, then close: a misaligned
//          binary stream cannot be resynced
//   2. if any requests are queued, FleetService::Drain(now) runs at the
//      high-water issue time observed on the wire; responses are routed
//      back to their connections as kResponse frames.
//   3. pending write buffers flush as far as EAGAIN allows (EPOLLOUT is
//      armed only while a buffer is non-empty); a connection whose buffer
//      exceeds the cap — a reader slower than its own request rate — is
//      closed rather than buffered without bound.
//   4. connections idle longer than idle_timeout_ms are closed.
//
// While the server is running it must be the fleet's only drainer:
// Drain() hands each response to whichever caller drained it, so a
// concurrent in-process Drain would swallow wire responses (and vice
// versa). Submit-side use of the in-process API remains safe.
//
// Stop() (and the destructor) performs a clean drain: stops accepting,
// executes one final Drain for everything still queued, flushes write
// buffers best-effort, then closes every connection.

#ifndef IMCF_NET_SERVER_H_
#define IMCF_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "net/wire.h"
#include "serve/fleet_service.h"

namespace imcf {
namespace net {

struct WireServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read back via
  /// port()).
  int port = 0;
  /// Connections idle (no bytes in either direction) longer than this are
  /// closed. <= 0 disables the sweep.
  int idle_timeout_ms = 30'000;
  /// epoll_wait timeout: bounds Stop() latency and the idle-sweep period.
  int epoll_wait_ms = 50;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 1024;
  /// A connection whose pending write buffer exceeds this is closed.
  size_t max_write_buffer_bytes = 4u << 20;
};

class WireServer {
 public:
  /// Binds, starts the serving thread. `service` must outlive the server.
  static Result<std::unique_ptr<WireServer>> Start(
      serve::FleetService* service, WireServerOptions options);

  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// The bound port (ephemeral readback when options.port == 0).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops accepting, drains queued wire requests through the service,
  /// flushes what the sockets will take, closes everything, joins the
  /// serving thread. Idempotent; called by the destructor.
  void Stop();

  /// Connections currently open (test/introspection surface).
  int64_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }
  /// Frames decoded off the wire since Start.
  int64_t frames_received() const {
    return frames_received_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    uint64_t gen = 0;  ///< distinguishes fd reuse in the pending map
    FrameReader reader;
    std::string outbuf;     ///< encoded frames not yet accepted by send()
    size_t out_off = 0;     ///< flushed prefix of outbuf
    int64_t last_active_ms = 0;
    bool close_after_flush = false;
    bool epollout_armed = false;
  };

  /// Where a queued request's response must go.
  struct PendingReply {
    int fd = -1;
    uint64_t gen = 0;
    uint64_t client_id = 0;
  };

  WireServer(serve::FleetService* service, WireServerOptions options);

  void Serve();
  void AcceptReady(int64_t now_ms);
  void ReadReady(Connection& conn, int64_t now_ms);
  /// Decodes and submits one checksum-valid frame.
  void HandleFrame(Connection& conn, const Frame& frame);
  /// Runs one Drain over everything queued and routes the responses.
  void DrainPending();
  void QueueFrame(Connection& conn, FrameType type, std::string_view payload);
  /// Writes outbuf as far as the socket allows; arms/disarms EPOLLOUT.
  void FlushWrites(Connection& conn);
  /// Flushes every connection with queued output (iterator-safe).
  void FlushAll();
  void CloseConnection(int fd);
  void SweepIdle(int64_t now_ms);

  serve::FleetService* service_;  ///< borrowed
  WireServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;

  // Everything below is touched only by the serving thread.
  std::map<int, Connection> connections_;
  std::map<uint64_t, PendingReply> pending_;  ///< service id -> connection
  uint64_t next_gen_ = 1;
  /// High-water issue time observed on the wire: the virtual `now` the
  /// front door drains at. Requests never execute before their issue time.
  SimTime now_ = 0;

  std::atomic<int64_t> open_connections_{0};
  std::atomic<int64_t> frames_received_{0};
};

}  // namespace net
}  // namespace imcf

#endif  // IMCF_NET_SERVER_H_
