// The fleet wire protocol: a compact length-prefixed binary framing of the
// serve layer's typed Request/Response vocabulary.
//
// The in-process FleetService API is a function call; the ROADMAP's north
// star is a service fronting millions of homes, and PFirewall-style
// mediation only means anything behind a real wire. This header defines
// that wire: a versioned frame header, varint-encoded payload fields (the
// storage layer's LEB128/zigzag coding, reused), a masked CRC32C trailer,
// and strictly bounded decoding that returns Status — never crashes, never
// over-reads — on any malformed input.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       2     magic 0x49 0x57 ("IW")
//   2       1     version (kWireVersion = 1)
//   3       1     frame type (FrameType)
//   4       4     payload length N (fixed32; N <= kMaxPayloadBytes)
//   8       N     payload (varint fields, see Encode*/Decode*)
//   8+N     4     masked CRC32C of bytes [0, 8+N) (fixed32)
//
// Frame types:
//   kRequest   client -> server; payload = correlation id + serve::Request
//   kResponse  server -> client; payload = correlation id + serve::Response
//   kShed      server -> client; admission control rejected the request —
//              payload = correlation id + retry_after seconds. A dedicated
//              type so backpressure replies stay tiny and a client can
//              switch on the frame type before decoding anything else.
//   kError     server -> client; the peer's bytes were understood as a
//              frame but rejected (payload decode failure, unknown kind).
//              Carries the correlation id when one was recovered, plus a
//              status code and message. Frame-level corruption (bad magic
//              / version / checksum / oversized length) is NOT answerable
//              in-band — the stream may be misaligned — so the connection
//              closes after a best-effort kError with id 0.
//
// Decoding rules: every length is bounds-checked before use, strings are
// capped (kMaxTenantBytes, kMaxMessageBytes), enums are range-checked, and
// a payload with trailing bytes is rejected — a frame decodes to exactly
// one value or to a Status.

#ifndef IMCF_NET_WIRE_H_
#define IMCF_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "serve/request.h"

namespace imcf {
namespace net {

inline constexpr uint8_t kWireMagic0 = 0x49;  // 'I'
inline constexpr uint8_t kWireMagic1 = 0x57;  // 'W'
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderBytes = 8;
inline constexpr size_t kWireTrailerBytes = 4;
/// Hard cap on one frame's payload. A length prefix above this is rejected
/// before any allocation, so a hostile 4 GiB prefix costs nothing.
inline constexpr size_t kMaxPayloadBytes = 1u << 20;
/// Caps on embedded strings and repeated fields.
inline constexpr size_t kMaxTenantBytes = 256;
inline constexpr size_t kMaxMessageBytes = 4096;
inline constexpr size_t kMaxRecipes = 1024;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kShed = 3,
  kError = 4,
};

/// One decoded frame: the type tag plus its raw payload bytes.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Wraps `payload` in a header + checksum trailer.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// A request as it travels the wire: the client's correlation id (echoed
/// verbatim on the reply — the pipelining key) plus the serve request.
struct WireRequest {
  uint64_t client_id = 0;
  serve::Request request;
};

/// A reply as it travels the wire. For kShed frames only client_id,
/// outcome and retry_after_seconds are populated.
struct WireResponse {
  uint64_t client_id = 0;
  serve::Response response;
};

/// Payload codecs (payload only — wrap with EncodeFrame to put on the
/// wire). Encoders append to *out; decoders consume the exact payload.
void EncodeRequestPayload(uint64_t client_id, const serve::Request& request,
                          std::string* out);
Result<WireRequest> DecodeRequestPayload(std::string_view payload);

void EncodeResponsePayload(uint64_t client_id,
                           const serve::Response& response, std::string* out);
Result<WireResponse> DecodeResponsePayload(std::string_view payload);

/// kShed payload: client_id + retry_after.
void EncodeShedPayload(uint64_t client_id, SimTime retry_after_seconds,
                       std::string* out);
Result<WireResponse> DecodeShedPayload(std::string_view payload);

/// kError payload: client_id (0 = unknown), status code, capped message.
void EncodeErrorPayload(uint64_t client_id, const Status& status,
                        std::string* out);
Result<WireResponse> DecodeErrorPayload(std::string_view payload);

/// Incremental frame reassembly over a byte stream. Feed() whatever the
/// socket produced (any fragmentation, down to one byte at a time); Next()
/// pops complete frames. The first malformed header or checksum poisons
/// the reader permanently — a misaligned binary stream cannot be resynced,
/// so the owning connection must close.
class FrameReader {
 public:
  /// Appends raw bytes from the stream. Returns false (and poisons the
  /// reader) when the buffered-but-unparsed data would exceed one maximal
  /// frame — a peer that streams garbage without ever completing a frame
  /// is cut off at a bounded cost.
  bool Feed(std::string_view data);

  /// Pops the next complete frame: a Frame, std::nullopt when more bytes
  /// are needed, or Status on malformed input (bad magic / version /
  /// unknown type / oversized length / checksum mismatch).
  Result<std::optional<Frame>> Next();

  /// True once a malformed frame (or a Feed overflow) was seen.
  bool poisoned() const { return poisoned_; }

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace net
}  // namespace imcf

#endif  // IMCF_NET_WIRE_H_
