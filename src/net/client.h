// WireClient: a blocking client for the fleet wire protocol.
//
// Connects over loopback TCP, speaks the framed binary protocol defined
// in wire.h, and exposes three levels of API:
//
//   Call(request)         — one request, one reply, with automatic retry
//                           on SHED: the client honours the server's
//                           retry_after hint by advancing the request's
//                           issue_time (virtual time — no wall sleep) and
//                           resubmitting, up to max_shed_retries.
//   Send(request) /       — explicit pipelining: queue any number of
//   Receive()               requests on the socket, then collect replies.
//                           Correlation ids tie replies to requests, so
//                           replies may be consumed in any order of
//                           arrival.
//   SendBytes(raw)        — raw bytes on the socket, bypassing the frame
//                           encoder. Exists so hostile-input tests can
//                           send truncated, corrupted or garbage streams
//                           through the public client.
//
// The client is intentionally blocking and single-threaded: it is a test
// and tooling surface (differential tests, benches, the example driver),
// not a production SDK.

#ifndef IMCF_NET_CLIENT_H_
#define IMCF_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/result.h"
#include "net/wire.h"
#include "serve/request.h"

namespace imcf {
namespace net {

struct WireClientOptions {
  /// How many times Call() resubmits after a SHED reply before giving up
  /// and returning the shed response to the caller.
  int max_shed_retries = 3;
};

class WireClient {
 public:
  /// Connects to the wire server on loopback.
  static Result<std::unique_ptr<WireClient>> Connect(
      int port, WireClientOptions options = {});

  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// One round trip. On a SHED reply, advances issue_time by the server's
  /// retry_after hint and resubmits (max_shed_retries times); the final
  /// reply — success, error outcome, or still-shed — is returned. An
  /// in-band kError frame surfaces as a non-ok Status, as do transport
  /// failures (connection closed, malformed server bytes).
  Result<serve::Response> Call(serve::Request request);

  /// Pipelining: queues one request on the socket and returns its
  /// correlation id without waiting for the reply.
  Result<uint64_t> Send(const serve::Request& request);

  /// Receives the next reply frame (kResponse or kShed), blocking until
  /// one arrives. Pairs with Send via WireResponse::client_id.
  Result<WireResponse> Receive();

  /// Writes raw bytes to the socket, bypassing the frame encoder. Hostile
  /// -input test surface. Returns false when the socket rejects the write.
  bool SendBytes(std::string_view bytes);

  /// True while the socket is open. Transport errors close it.
  bool connected() const { return fd_ >= 0; }

 private:
  WireClient(int fd, WireClientOptions options);

  /// Reads from the socket until the reader yields a frame. A clean peer
  /// close or malformed bytes poison the client (fd closes).
  Result<Frame> NextFrame();

  void CloseSocket();

  int fd_ = -1;
  WireClientOptions options_;
  FrameReader reader_;
  uint64_t next_client_id_ = 1;
};

}  // namespace net
}  // namespace imcf

#endif  // IMCF_NET_CLIENT_H_
